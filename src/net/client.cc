#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <random>
#include <thread>
#include <utility>

#include "net/socket_io.h"
#include "util/stopwatch.h"

namespace causaltad {
namespace net {
namespace {

/// splitmix64, for deriving per-session resume keys from the client id.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Raw TCP connect, shared by ConnectTcp and the default redialer.
int DialTcp(const std::string& host, int port, std::string* error) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error) *error = "socket failed: " + std::string(std::strerror(errno));
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    if (error) *error = "bad host " + host;
    return -1;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) {
      *error = "connect to " + host + ":" + std::to_string(port) +
               " failed: " + std::strerror(errno);
    }
    close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// While a barrier waits, its request is re-sent at this interval — a
/// swallowed Poll/ping (fault injection) must not stall the barrier until
/// the full timeout. Re-sends reuse the token, which is idempotent.
constexpr double kBarrierResendMs = 250.0;

}  // namespace

const char* PushOutcomeName(PushOutcome outcome) {
  switch (outcome) {
    case PushOutcome::kAccepted:
      return "accepted";
    case PushOutcome::kSessionFull:
      return "session_full";
    case PushOutcome::kShardFull:
      return "shard_full";
    case PushOutcome::kQuota:
      return "quota";
    case PushOutcome::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

double BackoffDelayMs(int attempt, double base_ms, double max_ms,
                      double jitter, util::Rng* rng) {
  double delay = base_ms * std::pow(2.0, std::max(attempt, 0));
  delay = std::min(delay, max_ms);
  if (jitter > 0.0 && rng != nullptr) {
    delay *= 1.0 + jitter * (2.0 * rng->Uniform() - 1.0);
  }
  return std::max(delay, 0.0);
}

double DecorrelatedBackoffMs(double prev_ms, double base_ms, double max_ms,
                             util::Rng* rng) {
  const double base = std::max(base_ms, 0.0);
  const double prev = std::max(prev_ms, base);
  const double span = 3.0 * prev - base;
  const double u = rng != nullptr ? rng->Uniform() : 0.5;
  return std::min(std::max(base + u * span, base), std::max(max_ms, base));
}

util::StatusOr<std::unique_ptr<Client>> Client::ConnectTcp(
    const std::string& host, int port, ClientOptions options) {
  std::string error;
  const int fd = DialTcp(host, port, &error);
  if (fd < 0) return util::Status::IoError(error);
  std::unique_ptr<Client> client(new Client(fd, std::move(options)));
  client->tcp_host_ = host;
  client->tcp_port_ = port;
  return client;
}

std::unique_ptr<Client> Client::FromFd(int fd, ClientOptions options) {
  return std::unique_ptr<Client>(new Client(fd, std::move(options)));
}

Client::Client(int fd, ClientOptions options)
    : fd_(fd), options_(std::move(options)) {
  client_id_ = options_.client_id;
  if (client_id_ == 0) {
    std::random_device rd;
    client_id_ = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    if (client_id_ == 0) client_id_ = 1;
  }
  rng_ = util::Rng(Mix(client_id_));
  if (options_.fault != nullptr) fault_conn_ = options_.fault->Attach();
  obs::Registry* registry = options_.registry != nullptr
                                ? options_.registry
                                : obs::Registry::Default();
  m_pushes_sent_ = registry->GetCounter("client_pushes_sent_total");
  m_retransmits_ = registry->GetCounter("client_retransmits_total");
  m_rejects_seen_ = registry->GetCounter("client_rejects_seen_total");
  m_polls_sent_ = registry->GetCounter("client_polls_sent_total");
  m_frames_received_ = registry->GetCounter("client_frames_received_total");
  m_bytes_sent_ = registry->GetCounter("client_bytes_sent_total");
  m_bytes_received_ = registry->GetCounter("client_bytes_received_total");
  m_reconnects_ = registry->GetCounter("client_reconnects_total");
  m_dup_scores_ = registry->GetCounter("client_dup_scores_total");
  if (options_.tracer != nullptr && options_.trace_slow_ms > 0.0) {
    options_.tracer->set_slow_threshold_ms(options_.trace_slow_ms);
  }
}

uint64_t Client::MaybeMintTraceId() {
  if (options_.tracer == nullptr || options_.trace_sample_period <= 0) {
    return 0;
  }
  if (--trace_countdown_ > 0) return 0;
  trace_countdown_ = options_.trace_sample_period;
  uint64_t id = Mix(client_id_ ^ Mix(++trace_nonce_));
  if (id == 0) id = 1;
  return id;
}

void Client::RecordRootSpan(const SentPoint& point) {
  if (point.trace_id == 0 || options_.tracer == nullptr) return;
  const double now = obs::TraceNowMs();
  options_.tracer->Record(point.trace_id, "client_push_rtt", "client",
                          point.sent_ms, now - point.sent_ms, /*root=*/true);
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

int Client::Dial() {
  if (options_.dialer) return options_.dialer();
  if (tcp_port_ >= 0) return DialTcp(tcp_host_, tcp_port_, nullptr);
  return -1;  // adopted fd with no redial hook: reconnect impossible
}

void Client::SleepMs(double ms) {
  if (ms <= 0.0) return;
  if (options_.sleeper) {
    options_.sleeper(ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

util::Status Client::SendFrame(const Frame& frame) {
  if (!fatal_.ok()) return fatal_;
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  const util::Status status =
      SendAll(fd_, bytes.data(), bytes.size(), options_.timeout_ms,
              fault_conn_.get());
  if (status.ok()) {
    stats_.bytes_sent += static_cast<int64_t>(bytes.size());
    m_bytes_sent_->Inc(static_cast<int64_t>(bytes.size()));
    return util::Status::Ok();
  }
  // The frame itself is NOT re-sent after a successful recovery: pushes are
  // covered by the resume replay and barrier frames are re-issued by their
  // epoch-watching wait loops.
  return Recover(status);
}

util::Status Client::ReadOnce(double timeout_ms, bool* got_bytes) {
  *got_bytes = false;
  if (!fatal_.ok()) return fatal_;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready =
      poll(&pfd, 1, std::max(0, static_cast<int>(timeout_ms)));
  if (ready < 0 && errno != EINTR) {
    return Recover(util::Status::IoError(
        "poll failed: " + std::string(std::strerror(errno))));
  }
  if (ready <= 0) return util::Status::Ok();  // timeout / EINTR: no bytes
  uint8_t buf[64 * 1024];
  const IoResult r = RecvSome(fd_, buf, sizeof(buf), fault_conn_.get());
  if (r.n > 0) {
    *got_bytes = true;
    stats_.bytes_received += r.n;
    m_bytes_received_->Inc(r.n);
    decoder_.Feed(buf, static_cast<size_t>(r.n));
    Frame frame;
    while (fatal_.ok() && !transport_broken_ && decoder_.Next(&frame)) {
      ++stats_.frames_received;
      m_frames_received_->Inc();
      HandleFrame(frame);
    }
    if (!fatal_.ok()) return fatal_;  // protocol latch (server Error frame)
    if (transport_broken_) {
      transport_broken_ = false;
      return Recover(util::Status::IoError(transport_reason_));
    }
    if (!decoder_.status().ok()) {
      return Recover(util::Status::IoError(
          "corrupt stream: " + decoder_.status().message()));
    }
    return util::Status::Ok();
  }
  if (r.would_block) return util::Status::Ok();
  if (r.peer_closed) {
    return Recover(util::Status::IoError("connection closed by server"));
  }
  return Recover(util::Status::IoError(
      "recv failed: " + std::string(std::strerror(r.error))));
}

bool Client::Retryable(RejectReason reason) const {
  switch (reason) {
    case RejectReason::kSessionFull:
    case RejectReason::kShardFull:
    case RejectReason::kQuota:
    case RejectReason::kOutOfOrder:
      return true;
    case RejectReason::kShutdown:
      return false;
  }
  return false;
}

void Client::HandleFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kScoreDelta: {
      if (frame.token != 0 && frame.token == waiting_token_) {
        token_seen_ = true;
      }
      const auto it = sessions_.find(frame.session);
      if (it == sessions_.end() || frame.scores.empty()) return;
      Session& session = it->second;
      // Offset dedupe: every delta is stamped with the cumulative index of
      // its first score. Below the high-water mark is a redelivery
      // (reconnect or duplicated frame) — dropped; above it is a gap the
      // resume machinery must repair.
      const int64_t offset = static_cast<int64_t>(frame.offset);
      if (offset > session.delivered) {
        transport_broken_ = true;
        transport_reason_ =
            "score stream gap: delta offset " + std::to_string(offset) +
            " past high-water " + std::to_string(session.delivered);
        return;
      }
      const size_t dup = std::min<size_t>(
          static_cast<size_t>(session.delivered - offset),
          frame.scores.size());
      stats_.dup_scores += static_cast<int64_t>(dup);
      m_dup_scores_->Inc(static_cast<int64_t>(dup));
      if (dup == frame.scores.size()) return;
      const std::vector<double> fresh(frame.scores.begin() + dup,
                                      frame.scores.end());
      if (!session.replay_wire.empty()) {
        // A fresh score implies the server admitted every seq before it —
        // in particular the whole replayed prefix. Retire the replay state
        // so lingering rejects from superseded transmissions read as stale.
        session.replay_wire.clear();
        session.replay_resend_from = -1;
      }
      for (size_t k = 0; k < fresh.size(); ++k) {
        // Scores acknowledge the oldest in-flight points in feed order.
        if (!session.pending.empty()) {
          RecordRootSpan(session.pending.front());
          session.pending.pop_front();
          --total_inflight_;
        }
      }
      session.delivered += static_cast<int64_t>(fresh.size());
      if (score_cb_) {
        score_cb_(frame.session, fresh);
      } else {
        session.scores.insert(session.scores.end(), fresh.begin(),
                              fresh.end());
      }
      return;
    }
    case FrameType::kPushReject: {
      const auto it = sessions_.find(frame.session);
      if (it == sessions_.end()) return;
      Session& session = it->second;
      // Locate the point; a mismatched wire_seq means this reject refers to
      // a transmission we already resent — stale, ignore it.
      auto entry = session.pending.begin();
      while (entry != session.pending.end() && entry->seq != frame.seq) {
        ++entry;
      }
      if (entry == session.pending.end() ||
          entry->wire_seq != frame.wire_seq) {
        // Not an in-flight point. It may be a replayed-prefix transmission
        // from a fresh rebuild: those carry seqs below the delivered
        // high-water (disjoint from `pending`), emit no scores, and still
        // hit server backpressure — dropping their rejects as stale would
        // leave a permanent admission gap. Recognize them by wire_seq and
        // schedule a journal re-replay from the gap.
        const auto rit = session.replay_wire.find(frame.seq);
        if (rit == session.replay_wire.end() ||
            rit->second != frame.wire_seq) {
          return;  // genuinely stale: a transmission we already resent
        }
        ++stats_.rejects_seen;
        m_rejects_seen_->Inc();
        if (reject_cb_) reject_cb_(frame.session, frame.reason);
        if (frame.reason == RejectReason::kShutdown || !options_.auto_retry) {
          total_inflight_ -= static_cast<int64_t>(session.pending.size());
          session.pending.clear();
          session.replay_wire.clear();
          session.replay_resend_from = -1;
          if (frame.reason == RejectReason::kShutdown) {
            session.shutdown = true;
          }
          return;
        }
        if (session.replay_resend_from < 0 ||
            static_cast<uint64_t>(session.replay_resend_from) > frame.seq) {
          session.replay_resend_from = static_cast<int64_t>(frame.seq);
        }
        return;
      }
      ++stats_.rejects_seen;
      m_rejects_seen_->Inc();
      if (reject_cb_) reject_cb_(frame.session, frame.reason);
      if (frame.wire_seq == probe_wire_seq_) {
        // TryPush probe: record the verdict and drop the point — a probe is
        // never retransmitted.
        probe_rejected_ = true;
        probe_reason_ = frame.reason;
        session.pending.erase(entry);
        --total_inflight_;
        return;
      }
      if (frame.reason == RejectReason::kShutdown || !options_.auto_retry) {
        // Terminal (or retries disabled): the rejected point and everything
        // after it can never be accepted in order — drop the tail.
        const int64_t dropped =
            static_cast<int64_t>(session.pending.end() - entry);
        session.pending.erase(entry, session.pending.end());
        total_inflight_ -= dropped;
        if (frame.reason == RejectReason::kShutdown) session.shutdown = true;
        return;
      }
      // Go-back-N: mark the resend point; RunResends retransmits the tail.
      if (session.resend_from < 0 ||
          static_cast<uint64_t>(session.resend_from) > frame.seq) {
        session.resend_from = static_cast<int64_t>(frame.seq);
      }
      return;
    }
    case FrameType::kResumeAck: {
      if (awaiting_resume_ack_ && frame.session == resume_ack_session_) {
        resume_ack_offset_ = frame.offset;
        awaiting_resume_ack_ = false;
      }
      return;  // unsolicited acks (duplicated frames) are harmless
    }
    case FrameType::kHeartbeat: {
      if (frame.seq == 0 && frame.token != 0 &&
          frame.token == waiting_token_) {
        token_seen_ = true;  // the pong we are barriered on
      }
      return;
    }
    case FrameType::kAdminAck: {
      if (awaiting_admin_ && frame.token == admin_token_) {
        admin_result_ = frame.seq;
        admin_message_ = frame.message;
        awaiting_admin_ = false;
      }
      return;  // stale acks (duplicated frames) are harmless
    }
    case FrameType::kError: {
      // With reconnect on, protocol-class errors are treated as transport
      // damage: a corrupted stream can desync the server's decoder (or
      // materialize a garbage-but-parseable frame), and the resume handshake
      // revalidates everything from journaled state. A *genuine* client bug
      // would recur on every attempt and exhaust the retry budget, which
      // latches the underlying error — so nothing is silently swallowed.
      // Auth failures and shutdown are deterministic verdicts; latch those.
      const bool recoverable =
          options_.reconnect && (frame.code == ErrorCode::kProtocol ||
                                 frame.code == ErrorCode::kUnknownSession ||
                                 frame.code == ErrorCode::kDuplicateSession ||
                                 frame.code == ErrorCode::kInvalidSegment);
      if (recoverable) {
        if (!transport_broken_) {
          transport_broken_ = true;
          transport_reason_ = std::string("server error (") +
                              ErrorCodeName(frame.code) + "): " +
                              frame.message;
        }
        return;
      }
      if (fatal_.ok()) {
        fatal_ = util::Status::FailedPrecondition(
            std::string("server error (") + ErrorCodeName(frame.code) +
            "): " + frame.message);
      }
      return;
    }
    default:
      if (fatal_.ok()) {
        fatal_ = util::Status::Internal("server sent a client-only frame");
      }
      return;
  }
}

util::Status Client::RunResends() {
  for (auto& [id, session] : sessions_) {
    if (session.shutdown) continue;
    if (session.replay_resend_from >= 0) {
      // Refill the replayed prefix from the backpressure gap, then force
      // the in-flight tail to follow in seq order (the server bounced it
      // out_of_order while the gap was open).
      const uint64_t from = static_cast<uint64_t>(session.replay_resend_from);
      session.replay_resend_from = -1;
      for (uint64_t seq = from;
           seq < static_cast<uint64_t>(session.delivered) &&
           seq < session.journal.size();
           ++seq) {
        Frame push;
        push.type = FrameType::kPush;
        push.session = id;
        push.seq = seq;
        push.wire_seq = next_wire_seq_++;
        push.segment = session.journal[seq];
        session.replay_wire[seq] = push.wire_seq;
        ++stats_.pushes_sent;
        ++stats_.retransmits;
        m_pushes_sent_->Inc();
        m_retransmits_->Inc();
        CAUSALTAD_RETURN_IF_ERROR(SendFrame(push));
      }
      if (session.resend_from < 0 && !session.pending.empty()) {
        session.resend_from =
            static_cast<int64_t>(session.pending.front().seq);
      }
    }
    if (session.resend_from < 0) continue;
    const uint64_t from = static_cast<uint64_t>(session.resend_from);
    session.resend_from = -1;
    for (SentPoint& point : session.pending) {
      if (point.seq < from) continue;
      point.wire_seq = next_wire_seq_++;
      Frame push;
      push.type = FrameType::kPush;
      push.session = id;
      push.seq = point.seq;
      push.wire_seq = point.wire_seq;
      push.segment = point.segment;
      push.trace_id = point.trace_id;  // the trace follows the point
      ++stats_.pushes_sent;
      ++stats_.retransmits;
      m_pushes_sent_->Inc();
      m_retransmits_->Inc();
      CAUSALTAD_RETURN_IF_ERROR(SendFrame(push));
    }
  }
  return util::Status::Ok();
}

util::Status Client::PollBarrier(uint64_t session) {
  util::Stopwatch watch;
  while (true) {
    Frame poll_frame;
    poll_frame.type = FrameType::kPoll;
    poll_frame.session = session;
    poll_frame.token = next_token_++;
    const auto it = sessions_.find(session);
    if (it != sessions_.end()) {
      poll_frame.offset = static_cast<uint64_t>(it->second.delivered);
    }
    ++stats_.polls_sent;
    m_polls_sent_->Inc();
    waiting_token_ = poll_frame.token;
    token_seen_ = false;
    const uint64_t sent_epoch = epoch_;
    util::Status status = SendFrame(poll_frame);
    if (!status.ok()) {
      waiting_token_ = 0;
      return status;
    }
    if (epoch_ != sent_epoch) continue;  // died with the old conn: re-send
    double last_send_ms = watch.ElapsedMillis();
    while (!token_seen_) {
      if (!fatal_.ok()) {
        waiting_token_ = 0;
        return fatal_;
      }
      bool got = false;
      status = ReadOnce(std::min(50.0, options_.timeout_ms), &got);
      if (!status.ok()) {
        waiting_token_ = 0;
        return status;
      }
      if (epoch_ != sent_epoch) break;  // reconnected mid-wait: re-send
      const double elapsed = watch.ElapsedMillis();
      if (!token_seen_ && elapsed > options_.timeout_ms) {
        waiting_token_ = 0;
        return util::Status::IoError("timed out waiting for the server");
      }
      if (!token_seen_ && elapsed - last_send_ms > kBarrierResendMs) {
        status = SendFrame(poll_frame);  // same token: idempotent
        ++stats_.polls_sent;
        m_polls_sent_->Inc();
        if (!status.ok()) {
          waiting_token_ = 0;
          return status;
        }
        if (epoch_ != sent_epoch) break;
        last_send_ms = elapsed;
      }
    }
    if (token_seen_) {
      waiting_token_ = 0;
      return util::Status::Ok();
    }
  }
}

util::Status Client::Heartbeat() {
  if (!fatal_.ok()) return fatal_;
  util::Stopwatch watch;
  while (true) {
    Frame ping;
    ping.type = FrameType::kHeartbeat;
    ping.token = next_token_++;
    ping.seq = 1;
    waiting_token_ = ping.token;
    token_seen_ = false;
    const uint64_t sent_epoch = epoch_;
    util::Status status = SendFrame(ping);
    if (!status.ok()) {
      waiting_token_ = 0;
      return status;
    }
    if (epoch_ != sent_epoch) continue;
    double last_send_ms = watch.ElapsedMillis();
    while (!token_seen_) {
      if (!fatal_.ok()) {
        waiting_token_ = 0;
        return fatal_;
      }
      bool got = false;
      status = ReadOnce(std::min(50.0, options_.timeout_ms), &got);
      if (!status.ok()) {
        waiting_token_ = 0;
        return status;
      }
      if (epoch_ != sent_epoch) break;
      const double elapsed = watch.ElapsedMillis();
      if (!token_seen_ && elapsed > options_.timeout_ms) {
        waiting_token_ = 0;
        return util::Status::IoError("timed out waiting for a pong");
      }
      if (!token_seen_ && elapsed - last_send_ms > kBarrierResendMs) {
        status = SendFrame(ping);
        if (!status.ok()) {
          waiting_token_ = 0;
          return status;
        }
        if (epoch_ != sent_epoch) break;
        last_send_ms = elapsed;
      }
    }
    if (token_seen_) {
      waiting_token_ = 0;
      return util::Status::Ok();
    }
  }
}

util::Status Client::Admin(const std::string& command, uint64_t* result,
                           std::string* message) {
  if (!fatal_.ok()) return fatal_;
  util::Stopwatch watch;
  while (true) {
    Frame admin;
    admin.type = FrameType::kAdmin;
    admin.token = next_token_++;
    admin.message = command;
    awaiting_admin_ = true;
    admin_token_ = admin.token;
    const uint64_t sent_epoch = epoch_;
    util::Status status = SendFrame(admin);
    if (!status.ok()) {
      awaiting_admin_ = false;
      return status;
    }
    if (epoch_ != sent_epoch) continue;  // died with the old conn: re-send
    double last_send_ms = watch.ElapsedMillis();
    while (awaiting_admin_) {
      if (!fatal_.ok()) {
        awaiting_admin_ = false;
        return fatal_;
      }
      bool got = false;
      status = ReadOnce(std::min(50.0, options_.timeout_ms), &got);
      if (!status.ok()) {
        awaiting_admin_ = false;
        return status;
      }
      if (epoch_ != sent_epoch) break;  // reconnected mid-wait: re-send
      const double elapsed = watch.ElapsedMillis();
      if (awaiting_admin_ && elapsed > options_.timeout_ms) {
        awaiting_admin_ = false;
        return util::Status::IoError("timed out waiting for an admin ack");
      }
      if (awaiting_admin_ && elapsed - last_send_ms > kBarrierResendMs) {
        // Same token: the server's replay cache makes the resend idempotent.
        status = SendFrame(admin);
        if (!status.ok()) {
          awaiting_admin_ = false;
          return status;
        }
        if (epoch_ != sent_epoch) break;
        last_send_ms = elapsed;
      }
    }
    if (!awaiting_admin_ && epoch_ == sent_epoch) {
      if (result != nullptr) *result = admin_result_;
      if (message != nullptr) *message = admin_message_;
      return util::Status::Ok();
    }
  }
}

util::Status Client::ScrapeStats(std::string* text) {
  if (!fatal_.ok()) return fatal_;
  util::Stopwatch watch;
  while (true) {
    Frame scrape;
    scrape.type = FrameType::kStats;
    scrape.token = next_token_++;
    // The reply is an AdminAck, so the scrape rides the Admin barrier state
    // (one outstanding command per connection, same as Admin itself).
    awaiting_admin_ = true;
    admin_token_ = scrape.token;
    const uint64_t sent_epoch = epoch_;
    util::Status status = SendFrame(scrape);
    if (!status.ok()) {
      awaiting_admin_ = false;
      return status;
    }
    if (epoch_ != sent_epoch) continue;  // died with the old conn: re-send
    double last_send_ms = watch.ElapsedMillis();
    while (awaiting_admin_) {
      if (!fatal_.ok()) {
        awaiting_admin_ = false;
        return fatal_;
      }
      bool got = false;
      status = ReadOnce(std::min(50.0, options_.timeout_ms), &got);
      if (!status.ok()) {
        awaiting_admin_ = false;
        return status;
      }
      if (epoch_ != sent_epoch) break;  // reconnected mid-wait: re-send
      const double elapsed = watch.ElapsedMillis();
      if (awaiting_admin_ && elapsed > options_.timeout_ms) {
        awaiting_admin_ = false;
        return util::Status::IoError("timed out waiting for a stats ack");
      }
      if (awaiting_admin_ && elapsed - last_send_ms > kBarrierResendMs) {
        status = SendFrame(scrape);  // same token: a re-scrape is harmless
        if (!status.ok()) {
          awaiting_admin_ = false;
          return status;
        }
        if (epoch_ != sent_epoch) break;
        last_send_ms = elapsed;
      }
    }
    if (!awaiting_admin_ && epoch_ == sent_epoch) {
      if (admin_result_ != static_cast<uint64_t>(AdminStatus::kOk)) {
        return util::Status::FailedPrecondition("stats scrape refused: " +
                                                admin_message_);
      }
      if (text != nullptr) *text = admin_message_;
      return util::Status::Ok();
    }
  }
}

util::Status Client::Migrate() {
  if (!fatal_.ok()) return fatal_;
  if (!options_.reconnect) {
    return util::Status::FailedPrecondition(
        "Migrate requires options.reconnect");
  }
  // The existing recovery machinery IS the migration: close, redial (the
  // dialer picks the new destination), resume every session with journal
  // replay and offset dedupe.
  return Recover(util::Status::IoError("administrative migration"));
}

util::Status Client::Recover(util::Status cause) {
  if (!options_.reconnect || in_recovery_) {
    if (fatal_.ok()) fatal_ = std::move(cause);
    return fatal_;
  }
  in_recovery_ = true;
  util::Stopwatch watch;
  util::Status last = std::move(cause);
  // Decorrelated-jitter state: each outage restarts from base and wanders
  // independently per client (the rng is seeded from client_id).
  double prev_delay_ms = options_.reconnect_base_ms;
  for (int attempt = 0; attempt < options_.max_reconnect_attempts;
       ++attempt) {
    if (options_.decorrelated_backoff) {
      prev_delay_ms =
          DecorrelatedBackoffMs(prev_delay_ms, options_.reconnect_base_ms,
                                options_.reconnect_max_ms, &rng_);
      SleepMs(prev_delay_ms);
    } else {
      SleepMs(BackoffDelayMs(attempt, options_.reconnect_base_ms,
                             options_.reconnect_max_ms,
                             options_.reconnect_jitter, &rng_));
    }
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
    const int fd = Dial();
    if (fd < 0) {
      last = util::Status::IoError("redial failed");
      continue;
    }
    fd_ = fd;
    decoder_ = FrameDecoder();
    fatal_ = util::Status::Ok();
    waiting_token_ = 0;
    token_seen_ = false;
    awaiting_resume_ack_ = false;
    transport_broken_ = false;
    if (options_.fault != nullptr) fault_conn_ = options_.fault->Attach();
    ++epoch_;
    const util::Status handshake = ResumeHandshake();
    if (handshake.ok()) {
      ++stats_.reconnects;
      m_reconnects_->Inc();
      stats_.last_recovery_ms = watch.ElapsedMillis();
      in_recovery_ = false;
      return util::Status::Ok();
    }
    last = handshake;
  }
  in_recovery_ = false;
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  fatal_ = util::Status::IoError(
      "reconnect budget exhausted after " +
      std::to_string(options_.max_reconnect_attempts) +
      " attempts: " + last.message());
  return fatal_;
}

util::Status Client::ResumeHandshake() {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.tenant = options_.tenant;
  hello.auth_token = options_.auth_token;
  CAUSALTAD_RETURN_IF_ERROR(SendFrame(hello));
  CAUSALTAD_RETURN_IF_ERROR(PollBarrier(~uint64_t{0}));
  for (auto& [id, session] : sessions_) {
    if (session.broken || session.shutdown) continue;
    if (session.ended && session.pending.empty()) continue;  // fully done
    CAUSALTAD_RETURN_IF_ERROR(ResumeSession(id, &session));
  }
  total_inflight_ = 0;
  for (const auto& [id, session] : sessions_) {
    total_inflight_ += static_cast<int64_t>(session.pending.size());
  }
  return util::Status::Ok();
}

util::Status Client::ResumeSession(uint64_t id, Session* session) {
  Frame resume;
  resume.type = FrameType::kResume;
  resume.session = id;
  resume.resume_key = session->resume_key;
  resume.source = session->source;
  resume.destination = session->destination;
  resume.time_slot = session->time_slot;
  resume.offset = static_cast<uint64_t>(session->delivered);
  awaiting_resume_ack_ = true;
  resume_ack_session_ = id;
  util::Status status = SendFrame(resume);
  if (!status.ok()) {
    awaiting_resume_ack_ = false;
    return status;
  }
  util::Stopwatch watch;
  while (awaiting_resume_ack_) {
    if (!fatal_.ok()) {
      awaiting_resume_ack_ = false;
      return fatal_;
    }
    bool got = false;
    status = ReadOnce(std::min(50.0, options_.timeout_ms), &got);
    if (!status.ok()) {
      awaiting_resume_ack_ = false;
      return status;
    }
    if (awaiting_resume_ack_ && watch.ElapsedMillis() > options_.timeout_ms) {
      // A Resume is NOT idempotent-resendable on the same connection, so a
      // swallowed one fails the whole handshake attempt; the Recover loop
      // retries on a fresh connection.
      awaiting_resume_ack_ = false;
      return util::Status::IoError("timed out waiting for ResumeAck");
    }
  }
  const uint64_t replay_from = resume_ack_offset_;
  session->replay_wire.clear();
  session->replay_resend_from = -1;
  // Acked-but-journaled prefix first (fresh rebuild asks for seq 0; these
  // score into the server's emit-skip window and redeliver nothing).
  // Tracked in replay_wire: they can still bounce off server backpressure,
  // and those rejects must trigger a journal re-replay from the gap.
  for (uint64_t seq = replay_from;
       seq < static_cast<uint64_t>(session->delivered); ++seq) {
    if (seq >= session->journal.size()) {
      // The needed prefix was discarded (journal overflow): this session
      // cannot be rebuilt. End the server-side shell so it does not leak,
      // mark the session broken, and let the other sessions continue.
      session->broken = true;
      break;
    }
    Frame push;
    push.type = FrameType::kPush;
    push.session = id;
    push.seq = seq;
    push.wire_seq = next_wire_seq_++;
    push.segment = session->journal[seq];
    session->replay_wire[seq] = push.wire_seq;
    ++stats_.pushes_sent;
    ++stats_.retransmits;
    m_pushes_sent_->Inc();
    m_retransmits_->Inc();
    CAUSALTAD_RETURN_IF_ERROR(SendFrame(push));
  }
  if (session->broken) {
    total_inflight_ -= static_cast<int64_t>(session->pending.size());
    session->pending.clear();
    session->replay_wire.clear();
    Frame end;
    end.type = FrameType::kEnd;
    end.session = id;
    return SendFrame(end);
  }
  // Unscored tail from the in-flight buffer, with fresh wire seqs so any
  // straggler rejects from the old transmissions read as stale.
  for (SentPoint& point : session->pending) {
    if (point.seq < replay_from) continue;
    point.wire_seq = next_wire_seq_++;
    Frame push;
    push.type = FrameType::kPush;
    push.session = id;
    push.seq = point.seq;
    push.wire_seq = point.wire_seq;
    push.segment = point.segment;
    push.trace_id = point.trace_id;  // the trace follows the point
    ++stats_.pushes_sent;
    ++stats_.retransmits;
    m_pushes_sent_->Inc();
    m_retransmits_->Inc();
    CAUSALTAD_RETURN_IF_ERROR(SendFrame(push));
  }
  session->resend_from = -1;
  if (session->end_sent) {
    Frame end;
    end.type = FrameType::kEnd;
    end.session = id;
    CAUSALTAD_RETURN_IF_ERROR(SendFrame(end));
  }
  return util::Status::Ok();
}

util::Status Client::DrainTo(int64_t target, uint64_t focus_session) {
  util::Stopwatch watch;
  while (total_inflight_ > target) {
    if (!fatal_.ok()) return fatal_;
    CAUSALTAD_RETURN_IF_ERROR(RunResends());
    // Ask for deltas for every session with in-flight points; barrier on
    // the focus session's token, which is sent last.
    std::vector<uint64_t> ids;
    for (const auto& [id, session] : sessions_) {
      if (!session.pending.empty() && id != focus_session) {
        ids.push_back(id);
      }
    }
    if (sessions_.count(focus_session) != 0) ids.push_back(focus_session);
    if (ids.empty()) break;  // nothing left that could still score
    for (size_t i = 0; i + 1 < ids.size(); ++i) {
      Frame poll_frame;
      poll_frame.type = FrameType::kPoll;
      poll_frame.session = ids[i];
      poll_frame.token = next_token_++;
      poll_frame.offset =
          static_cast<uint64_t>(sessions_[ids[i]].delivered);
      ++stats_.polls_sent;
      m_polls_sent_->Inc();
      CAUSALTAD_RETURN_IF_ERROR(SendFrame(poll_frame));
    }
    CAUSALTAD_RETURN_IF_ERROR(PollBarrier(ids.back()));
    CAUSALTAD_RETURN_IF_ERROR(RunResends());
    if (total_inflight_ > target) {
      if (watch.ElapsedMillis() > options_.timeout_ms) {
        return util::Status::IoError("timed out draining in-flight points");
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.poll_backoff_ms));
    }
  }
  return util::Status::Ok();
}

util::Status Client::Hello() {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.tenant = options_.tenant;
  hello.auth_token = options_.auth_token;
  CAUSALTAD_RETURN_IF_ERROR(SendFrame(hello));
  // Barrier on a Poll for a session that cannot exist: the server answers
  // Polls in order (empty delta), so by the time it arrives the Hello
  // verdict — possibly an Error frame — has been processed.
  return PollBarrier(~uint64_t{0});
}

uint64_t Client::Begin(roadnet::SegmentId source,
                       roadnet::SegmentId destination, int32_t time_slot) {
  const uint64_t id = next_session_++;
  Session state;
  state.source = source;
  state.destination = destination;
  state.time_slot = time_slot;
  if (options_.reconnect) {
    state.resume_key = Mix(client_id_ ^ Mix(id + 1));
    if (state.resume_key == 0) state.resume_key = 1;
  }
  const uint64_t resume_key = state.resume_key;
  sessions_.emplace(id, std::move(state));
  Frame begin;
  begin.type = FrameType::kBegin;
  begin.session = id;
  begin.source = source;
  begin.destination = destination;
  begin.time_slot = time_slot;
  begin.resume_key = resume_key;
  (void)SendFrame(begin);  // pipelined; failures latch into status()
  return id;
}

util::Status Client::Push(uint64_t session, roadnet::SegmentId segment,
                          uint64_t trace_id) {
  if (!fatal_.ok()) return fatal_;
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second.ended) {
    return util::Status::InvalidArgument("unknown or ended session");
  }
  if (it->second.shutdown) {
    return util::Status::FailedPrecondition("service shut down");
  }
  if (it->second.broken) {
    return util::Status::FailedPrecondition(
        "session lost in reconnect (journal overflow)");
  }
  Session& state = it->second;
  SentPoint point;
  point.seq = state.next_seq++;
  point.wire_seq = next_wire_seq_++;
  point.segment = segment;
  point.trace_id = trace_id != 0 ? trace_id : MaybeMintTraceId();
  if (point.trace_id != 0) point.sent_ms = obs::TraceNowMs();
  state.pending.push_back(point);
  ++total_inflight_;
  if (options_.reconnect && !state.journal_overflow) {
    state.journal.push_back(segment);
    if (static_cast<int64_t>(state.journal.size()) >
        options_.max_journal_points) {
      state.journal_overflow = true;
      state.journal.clear();
      state.journal.shrink_to_fit();
    }
  }
  Frame push;
  push.type = FrameType::kPush;
  push.session = session;
  push.seq = point.seq;
  push.wire_seq = point.wire_seq;
  push.segment = segment;
  push.trace_id = point.trace_id;
  ++stats_.pushes_sent;
  m_pushes_sent_->Inc();
  CAUSALTAD_RETURN_IF_ERROR(SendFrame(push));
  if (total_inflight_ >= options_.max_inflight) {
    // Window full: drain to half so pushes batch between drains.
    CAUSALTAD_RETURN_IF_ERROR(
        DrainTo(std::max<int64_t>(options_.max_inflight / 2, 0), session));
    if (state.shutdown) {
      return util::Status::FailedPrecondition("service shut down");
    }
  }
  return util::Status::Ok();
}

util::StatusOr<PushOutcome> Client::TryPush(uint64_t session,
                                            roadnet::SegmentId segment) {
  if (!fatal_.ok()) return fatal_;
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second.ended) {
    return util::Status::InvalidArgument("unknown or ended session");
  }
  if (it->second.shutdown) return PushOutcome::kShutdown;
  if (it->second.broken) {
    return util::Status::FailedPrecondition(
        "session lost in reconnect (journal overflow)");
  }
  Session& state = it->second;
  SentPoint point;
  point.seq = state.next_seq;
  point.wire_seq = next_wire_seq_++;
  point.segment = segment;
  point.trace_id = MaybeMintTraceId();
  if (point.trace_id != 0) point.sent_ms = obs::TraceNowMs();
  Frame push;
  push.type = FrameType::kPush;
  push.session = session;
  push.seq = point.seq;
  push.wire_seq = point.wire_seq;
  push.segment = segment;
  push.trace_id = point.trace_id;
  state.pending.push_back(point);
  ++state.next_seq;
  ++total_inflight_;
  ++stats_.pushes_sent;
  m_pushes_sent_->Inc();
  if (options_.reconnect && !state.journal_overflow) {
    state.journal.push_back(segment);
    if (static_cast<int64_t>(state.journal.size()) >
        options_.max_journal_points) {
      state.journal_overflow = true;
      state.journal.clear();
      state.journal.shrink_to_fit();
    }
  }
  probe_wire_seq_ = point.wire_seq;
  probe_rejected_ = false;
  util::Status status = SendFrame(push);
  if (status.ok()) status = PollBarrier(session);
  probe_wire_seq_ = 0;
  if (!status.ok()) return status;
  if (!probe_rejected_) return PushOutcome::kAccepted;
  // The probe was rejected and dropped; un-assign its seq so the next push
  // of this session reuses it (the server never advanced past it).
  if (options_.reconnect && !state.journal_overflow &&
      state.journal.size() == state.next_seq) {
    state.journal.pop_back();
  }
  --state.next_seq;
  switch (probe_reason_) {
    case RejectReason::kSessionFull:
      return PushOutcome::kSessionFull;
    case RejectReason::kShardFull:
      return PushOutcome::kShardFull;
    case RejectReason::kQuota:
      return PushOutcome::kQuota;
    case RejectReason::kShutdown:
      state.shutdown = true;
      return PushOutcome::kShutdown;
    case RejectReason::kOutOfOrder:
      break;
  }
  return util::Status::Internal(
      "push rejected out of order: the session stream has a gap");
}

util::Status Client::End(uint64_t session) {
  if (!fatal_.ok()) return fatal_;
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second.ended) {
    return util::Status::InvalidArgument("unknown or ended session");
  }
  if (it->second.broken) {
    return util::Status::FailedPrecondition(
        "session lost in reconnect (journal overflow)");
  }
  util::Stopwatch watch;
  while (!it->second.pending.empty()) {
    if (it->second.shutdown) break;  // dropped tail: nothing more will score
    if (it->second.broken) {
      return util::Status::FailedPrecondition(
          "session lost in reconnect (journal overflow)");
    }
    CAUSALTAD_RETURN_IF_ERROR(RunResends());
    CAUSALTAD_RETURN_IF_ERROR(PollBarrier(session));
    if (!it->second.pending.empty()) {
      if (watch.ElapsedMillis() > options_.timeout_ms) {
        return util::Status::IoError("timed out draining session");
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.poll_backoff_ms));
    }
  }
  it->second.ended = true;
  it->second.end_sent = true;  // before the send: a lost End is replayed
  Frame end;
  end.type = FrameType::kEnd;
  end.session = session;
  return SendFrame(end);
}

util::StatusOr<std::vector<double>> Client::Finish(uint64_t session) {
  CAUSALTAD_RETURN_IF_ERROR(End(session));
  const auto it = sessions_.find(session);
  std::vector<double> scores = std::move(it->second.scores);
  sessions_.erase(it);
  return scores;
}

util::StatusOr<std::vector<double>> Client::Poll(uint64_t session) {
  if (!fatal_.ok()) return fatal_;
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return util::Status::InvalidArgument("unknown session");
  }
  if (it->second.broken) {
    return util::Status::FailedPrecondition(
        "session lost in reconnect (journal overflow)");
  }
  CAUSALTAD_RETURN_IF_ERROR(RunResends());
  CAUSALTAD_RETURN_IF_ERROR(PollBarrier(session));
  std::vector<double> scores = std::move(it->second.scores);
  it->second.scores.clear();
  return scores;
}

util::Status Client::ProcessIncoming(double timeout_ms) {
  bool got = true;
  // First read waits up to timeout_ms; then drain whatever else is ready.
  CAUSALTAD_RETURN_IF_ERROR(ReadOnce(timeout_ms, &got));
  while (got) {
    CAUSALTAD_RETURN_IF_ERROR(ReadOnce(0.0, &got));
  }
  return RunResends();
}

}  // namespace net
}  // namespace causaltad
