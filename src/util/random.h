#ifndef CAUSALTAD_UTIL_RANDOM_H_
#define CAUSALTAD_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace causaltad {
namespace util {

/// Deterministic xoshiro256** PRNG.
///
/// Every stochastic component in the library (city synthesis, trip
/// generation, weight init, reparameterization sampling, anomaly injection)
/// draws from an explicitly seeded Rng so experiments replay bit-identically.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Non-positive weights are treated as zero; requires a positive total.
  int64_t Categorical(const std::vector<double>& weights);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Derives an independent child generator; successive calls yield distinct
  /// streams. Used to give each subsystem its own deterministic stream.
  Rng Fork();

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<int64_t> Permutation(int64_t n);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace util
}  // namespace causaltad

#endif  // CAUSALTAD_UTIL_RANDOM_H_
