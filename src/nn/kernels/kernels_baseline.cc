// Portable scalar/SSE2 backend: compiled with the project's plain -O2
// flags only, so the binary's floor runs on any x86-64 (or non-x86) host.

#define CAUSALTAD_KERNELS_NS baseline
#define CAUSALTAD_KERNELS_NAME "baseline"
#define CAUSALTAD_KERNELS_ISA ::causaltad::nn::kernels::Isa::kBaseline
#define CAUSALTAD_KERNELS_LANES 8

#include "nn/kernels/kernel_impl.inc"
