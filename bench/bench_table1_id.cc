// Reproduces Table I: ROC-AUC / PR-AUC on the in-distribution datasets
// (ID & Detour, ID & Switch) for both cities and all methods.
//
// Paper reference (Li et al., ICDE 2024, Table I): all learned baselines
// reach ~0.85-0.95, CausalTAD is best on every combination (improvements of
// 2.1%-5.7%), iBOAT is far behind.

#include <cstdio>
#include <string>
#include <vector>

#include "eval/datasets.h"
#include "eval/harness.h"
#include "eval/metrics.h"

namespace {

using causaltad::eval::BuildExperiment;
using causaltad::eval::EvaluateScores;
using causaltad::eval::ExperimentData;
using causaltad::eval::ScoreSet;
using causaltad::eval::TablePrinter;

void RunCity(const causaltad::eval::CityExperimentConfig& config,
             causaltad::eval::Scale scale) {
  std::printf("\n== Table I — %s (ID test sets, scale=%s) ==\n",
              config.name.c_str(), causaltad::eval::ScaleName(scale));
  const ExperimentData data = BuildExperiment(config);
  std::printf("train=%zu id_test=%zu id_detour=%zu id_switch=%zu vocab=%lld\n",
              data.train.size(), data.id_test.size(), data.id_detour.size(),
              data.id_switch.size(),
              static_cast<long long>(data.vocab()));

  TablePrinter table({"Method", "Detour ROC", "Detour PR", "Switch ROC",
                      "Switch PR"});
  table.PrintHeader();
  std::vector<std::string> names = causaltad::eval::BaselineNames();
  names.push_back(causaltad::eval::kCausalTadName);
  for (const std::string& name : names) {
    const auto scorer =
        causaltad::eval::FitOrLoad(name, data, config.name, scale);
    const std::vector<double> normal = ScoreSet(*scorer, data.id_test, 1.0);
    const std::vector<double> detour = ScoreSet(*scorer, data.id_detour, 1.0);
    const std::vector<double> sw = ScoreSet(*scorer, data.id_switch, 1.0);
    const auto res_detour = EvaluateScores(normal, detour);
    const auto res_switch = EvaluateScores(normal, sw);
    table.PrintRow({name, TablePrinter::Fmt(res_detour.roc_auc),
                    TablePrinter::Fmt(res_detour.pr_auc),
                    TablePrinter::Fmt(res_switch.roc_auc),
                    TablePrinter::Fmt(res_switch.pr_auc)});
  }
}

}  // namespace

int main() {
  const causaltad::eval::Scale scale = causaltad::eval::ScaleFromEnv();
  RunCity(causaltad::eval::XianConfig(scale), scale);
  RunCity(causaltad::eval::ChengduConfig(scale), scale);
  return 0;
}
