#ifndef CAUSALTAD_NET_CLIENT_H_
#define CAUSALTAD_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fault.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "roadnet/road_network.h"
#include "util/random.h"
#include "util/status.h"

namespace causaltad {
namespace net {

/// Client knobs.
struct ClientOptions {
  /// Tenant identity sent in the Hello handshake.
  std::string tenant = "default";
  std::string auth_token;
  /// Flow-control window: Push() blocks (draining scores via Poll round
  /// trips) while this many points are in flight — sent but not yet scored
  /// — across all of the connection's sessions. Bounds both the server-side
  /// queues this client can build and its own retransmit buffer.
  int64_t max_inflight = 256;
  /// Go-back-N: on a retryable PushReject (session_full / shard_full /
  /// quota / out_of_order) resend from the rejected point onward after
  /// draining. Off: rejects surface through the reject callback / TryPush
  /// only, and the rejected point is dropped from the stream.
  bool auto_retry = true;
  /// Sleep between empty Poll round trips while draining, so a blocked
  /// client does not busy-spin the server's event loop.
  double poll_backoff_ms = 0.2;
  /// Bound on any single blocking wait (Hello barrier, drain, Finish).
  double timeout_ms = 30000.0;

  // --- Fault tolerance (see src/net/README.md, "Failure semantics") ---

  /// Master switch for transparent session continuity. On a transport
  /// failure (send/recv error, EOF, corrupt stream) the client redials,
  /// re-Hellos, Resumes every live session, replays the unacked journal
  /// suffix, and the blocked call simply continues — the delivered score
  /// stream has no gaps and no duplicates. OFF (the default) preserves the
  /// original latch-fatal error model.
  bool reconnect = false;
  /// Reconnect retry budget per outage; exhausting it latches the fatal.
  int max_reconnect_attempts = 8;
  /// Backoff schedule bounds between redials (see decorrelated_backoff for
  /// the schedule itself; jitter applies only to the legacy schedule).
  double reconnect_base_ms = 10.0;
  double reconnect_max_ms = 2000.0;
  double reconnect_jitter = 0.1;
  /// Decorrelated-jitter backoff (the default): attempt k sleeps
  /// min(max, base + U·(3·prev − base)) where prev is the previous sleep —
  /// each client's schedule wanders independently of every other's, so N
  /// clients failing over to the same peer at once do NOT retry in
  /// lockstep the way a shared exponential ladder makes them (even a
  /// ±jitter band keeps the herd bunched around base·2^k). Off: the legacy
  /// BackoffDelayMs exponential ladder with its ±jitter band.
  bool decorrelated_backoff = true;
  /// Identity mixed into every session's resume_key so two clients of the
  /// same tenant can never collide in the server's detached table.
  /// 0 draws one from std::random_device.
  uint64_t client_id = 0;
  /// Per-session journal bound (segments retained from seq 0 for full-prefix
  /// replay when the server lost the session). A session that outgrows it
  /// survives reattach-style resumes but is marked broken when a resume
  /// would need the discarded prefix.
  int64_t max_journal_points = 1 << 16;
  /// Redial hook; returns a connected fd or a negative value on failure.
  /// Defaults to re-dialing the original TCP endpoint (ConnectTcp clients);
  /// FromFd clients MUST set it for reconnect to work (tests point it at
  /// Server::AddLoopbackConnection).
  std::function<int()> dialer;
  /// Backoff sleep hook (milliseconds); tests capture the schedule instead
  /// of sleeping. Null sleeps for real.
  std::function<void(double)> sleeper;
  /// Deterministic fault injection at this client's socket boundary.
  /// nullptr = no faults. Must outlive the client.
  FaultInjector* fault = nullptr;

  // --- Observability (see src/obs/README.md) ---

  /// Metrics registry the client_* counters register into.
  /// Null = obs::Registry::Default().
  obs::Registry* registry = nullptr;
  /// Span sink for sampled traces. Null disables tracing entirely (no ids
  /// are minted, pushes stay v3-sized on the wire).
  obs::Tracer* tracer = nullptr;
  /// Mint a trace id on every Nth Push/TryPush (1 = every push, 0 = never).
  /// The id rides the v4 Push extension through routers to backend shards;
  /// the client records the root client_push_rtt span when the point's
  /// score arrives.
  int64_t trace_sample_period = 0;
  /// Convenience: when > 0 and tracer is set, forwarded to
  /// tracer->set_slow_threshold_ms() at construction — root spans past it
  /// capture their full chains into the tracer's slow log.
  double trace_slow_ms = 0.0;
};

/// Client-observed outcome of a single push attempt (TryPush).
enum class PushOutcome {
  kAccepted,
  kSessionFull,  // backpressure: retry after draining
  kShardFull,    // shard shedding load
  kQuota,        // tenant quota hit
  kShutdown,     // terminal: service shut down
};

const char* PushOutcomeName(PushOutcome outcome);

/// The legacy deterministic reconnect backoff schedule: attempt k (0-based)
/// waits base_ms * 2^k, capped at max_ms, then scaled by a uniform factor
/// in [1 - jitter, 1 + jitter] drawn from `rng` (pass nullptr for no
/// jitter). Exposed for unit tests.
double BackoffDelayMs(int attempt, double base_ms, double max_ms,
                      double jitter, util::Rng* rng);

/// One step of the decorrelated-jitter schedule (AWS-style): returns a
/// delay drawn uniformly from [base_ms, 3 * prev_ms], capped at max_ms —
/// feed the return value back as the next prev_ms (start at base_ms). With
/// a per-client rng the schedules decorrelate: the spread across clients
/// covers the whole band instead of bunching at base * 2^k, which is what
/// breaks the reconnect thundering-herd. nullptr rng takes the midpoint
/// (deterministic, tests only). Exposed for unit tests.
double DecorrelatedBackoffMs(double prev_ms, double base_ms, double max_ms,
                             util::Rng* rng);

/// Wire counters kept by the client. The struct is the per-instance
/// snapshot (stats() returns it by reference); every increment is mirrored
/// into client_* registry counters for the exposition, so fleet scrapes and
/// per-client assertions read the same events.
struct ClientStats {
  int64_t pushes_sent = 0;   // includes retransmissions
  int64_t retransmits = 0;   // go-back-N + resume replays
  int64_t rejects_seen = 0;  // genuine (non-stale) PushRejects
  int64_t polls_sent = 0;
  int64_t frames_received = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t reconnects = 0;       // outages survived (successful recoveries)
  int64_t dup_scores = 0;       // redelivered scores dropped by the dedupe
  double last_recovery_ms = 0.0;  // first failure -> handshake complete
};

/// Blocking client for the src/net wire protocol, one connection per
/// instance, single-threaded (no internal locks — share across threads
/// behind your own mutex, or give each thread its own connection, as the
/// tests' soak does).
///
/// Two usage modes over the same socket:
///  * Blocking: Begin/Push/End/Finish. Push applies window flow control and
///    (by default) go-back-N retransmission on retryable rejects, so the
///    score stream delivered by Finish is exactly the accepted feed order —
///    wire scores match direct serve::StreamingService scores (net_test
///    asserts 1e-6 relative parity).
///  * Callback poll mode: set score/reject callbacks and call
///    ProcessIncoming(timeout) from your own loop; Poll(session) requests a
///    delta explicitly.
///
/// Session continuity (options.reconnect): every session keeps a bounded
/// journal of its pushed segments and a delivered-score high-water mark.
/// When the transport fails mid-call, the client redials with exponential
/// backoff, re-authenticates, and Resumes each session — the server either
/// re-adopts its detached state (client replays only the unacked suffix) or
/// asks for a full prefix replay into an emit-skip rebuild. Redelivered
/// ScoreDeltas are deduped against the high-water mark via their offset
/// stamp, so the caller-visible stream stays gap-free and duplicate-free
/// across any number of outages.
///
/// Error model: protocol-fatal failures (server Error frames, auth
/// rejection) latch into status() and every later call returns it;
/// transport failures latch only when reconnect is off or the retry budget
/// is exhausted.
class Client {
 public:
  using ScoreCallback =
      std::function<void(uint64_t session, const std::vector<double>&)>;
  using RejectCallback = std::function<void(uint64_t session, RejectReason)>;

  /// Connects to a Server's TCP listener.
  static util::StatusOr<std::unique_ptr<Client>> ConnectTcp(
      const std::string& host, int port, ClientOptions options = {});
  /// Adopts a connected fd (the peer end of Server::AddLoopbackConnection).
  static std::unique_ptr<Client> FromFd(int fd, ClientOptions options = {});

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends the tenant handshake and barriers on it: returns the server's
  /// auth verdict before any other traffic is risked.
  util::Status Hello();

  /// Opens a session (client-assigned id, valid on this connection only).
  /// Pipelined — a Begin failure (bad endpoints) surfaces as a latched
  /// connection error on a later call.
  uint64_t Begin(roadnet::SegmentId source, roadnet::SegmentId destination,
                 int32_t time_slot);

  /// Feeds the session's next observed point under window flow control;
  /// blocks draining scores while the window is full. With auto_retry,
  /// retryable rejects are retransmitted in order and the call only fails
  /// on terminal conditions (shutdown, connection error). A nonzero
  /// `trace_id` forwards an existing trace (router legs); 0 lets the
  /// client's own sampling mint one.
  util::Status Push(uint64_t session, roadnet::SegmentId segment,
                    uint64_t trace_id = 0);

  /// One push attempt, synchronously barriered: returns what the server did
  /// with exactly this point. Never retransmits (regardless of auto_retry);
  /// a rejected point simply does not join the stream.
  util::StatusOr<PushOutcome> TryPush(uint64_t session,
                                      roadnet::SegmentId segment);

  /// Drains every in-flight point of the session (blocking, with
  /// retransmission), then sends End.
  util::Status End(uint64_t session);

  /// End + drain, returning the session's full score stream (one score per
  /// accepted point, feed order). The session is forgotten client-side.
  util::StatusOr<std::vector<double>> Finish(uint64_t session);

  /// One Poll round trip; returns the scores that arrived for `session`
  /// since the last Poll/Push drain (empty when none, or when a score
  /// callback consumes them).
  util::StatusOr<std::vector<double>> Poll(uint64_t session);

  /// One heartbeat round trip (ping, barrier on the pong). Keeps an
  /// otherwise-idle connection from being reaped by the server's
  /// heartbeat_timeout_ms and doubles as a liveness probe.
  util::Status Heartbeat();

  /// One admin command round trip ("stage:<tag>" / "commit"): sends an
  /// Admin frame and barriers on its AdminAck. On success *result holds
  /// the ack's AdminStatus and *message its detail text (either may be
  /// null). The returned Status reflects the TRANSPORT; a kError /
  /// kBusy verdict is carried in *result. Commands must be idempotent
  /// under resend (the server replays the last ack on a duplicate token).
  util::Status Admin(const std::string& command, uint64_t* result,
                     std::string* message);

  /// One metrics scrape round trip: sends a Stats frame and barriers on the
  /// AdminAck carrying the peer's text exposition (a server answers with
  /// its own registry; a router answers with the aggregated fleet view).
  /// Requires the connection's tenant to be admin-authorized. Idempotent
  /// under resend like Admin.
  util::Status ScrapeStats(std::string* text);

  /// Administrative migration: force a reconnect through the dialer even
  /// though the current transport is healthy — the dialer picks the new
  /// destination, and every live session is carried over by the normal
  /// resume/replay machinery (no gaps, no duplicate scores). This is how a
  /// router moves sessions off a draining backend. Requires
  /// options.reconnect; counts as a reconnect in stats().
  util::Status Migrate();

  /// Callback poll mode: processes whatever the server has sent, waiting at
  /// most timeout_ms for the first byte. Runs retransmissions. Returns the
  /// latched connection status.
  util::Status ProcessIncoming(double timeout_ms);

  void set_score_callback(ScoreCallback cb) { score_cb_ = std::move(cb); }
  void set_reject_callback(RejectCallback cb) { reject_cb_ = std::move(cb); }

  /// Latched connection status (OK while the connection is usable).
  const util::Status& status() const { return fatal_; }
  const ClientStats& stats() const { return stats_; }
  /// Points sent but not yet scored, all sessions.
  int64_t inflight() const { return total_inflight_; }

 private:
  struct SentPoint {
    uint64_t seq = 0;
    uint64_t wire_seq = 0;  // latest transmission; stale rejects mismatch
    roadnet::SegmentId segment = roadnet::kInvalidSegment;
    uint64_t trace_id = 0;  // nonzero on sampled points; survives resends
    double sent_ms = 0.0;   // first-transmission time: the root span's
                            // start, so retries count into the RTT
  };
  struct Session {
    uint64_t next_seq = 0;
    std::deque<SentPoint> pending;  // sent, not yet scored, feed order
    std::vector<double> scores;     // delivered (when no score callback)
    int64_t resend_from = -1;       // pending index to retransmit from
    bool ended = false;
    bool end_sent = false;  // End hit the wire at least once (resume replay)
    bool shutdown = false;  // saw a terminal kShutdown reject
    // --- Continuity state (maintained only when options.reconnect) ---
    uint64_t resume_key = 0;      // server-side identity across transports
    int64_t delivered = 0;        // score high-water: dedupe + resume offset
    roadnet::SegmentId source = roadnet::kInvalidSegment;
    roadnet::SegmentId destination = roadnet::kInvalidSegment;
    int32_t time_slot = 0;
    // Full pushed prefix by seq, for fresh-resume replay (the acked part is
    // not in `pending` anymore). Bounded by max_journal_points; overflow
    // clears it and only reattach-style resumes remain possible.
    std::vector<roadnet::SegmentId> journal;
    bool journal_overflow = false;
    bool broken = false;  // a resume needed the discarded prefix
    // Prefix-replay transmissions from the last fresh rebuild: seq ->
    // wire_seq of the latest send. Replayed-prefix pushes are not in
    // `pending` (their scores were already delivered), but they are still
    // subject to server backpressure — a reject must be recognized here and
    // re-sent from the journal, or the rebuilt session gaps forever.
    std::unordered_map<uint64_t, uint64_t> replay_wire;
    int64_t replay_resend_from = -1;  // journal seq to re-replay from
  };

  explicit Client(int fd, ClientOptions options);

  util::Status SendFrame(const Frame& frame);
  util::Status ReadOnce(double timeout_ms, bool* got_bytes);
  void HandleFrame(const Frame& frame);
  /// Sends Poll(session, fresh token) and processes replies until the
  /// matching ScoreDelta arrives (intervening deltas/rejects are processed
  /// too). Re-sends the Poll when a mid-wait reconnect invalidates it.
  util::Status PollBarrier(uint64_t session);
  /// Retransmits the marked tail of every session with a pending resend.
  util::Status RunResends();
  /// Blocks until total inflight <= target (Poll round trips + backoff).
  util::Status DrainTo(int64_t target, uint64_t focus_session);
  bool Retryable(RejectReason reason) const;
  /// Transport-failure recovery: backoff-redial-resume until success or the
  /// attempt budget runs out (then latches `cause` into fatal_). Returns
  /// OK exactly when the connection is usable again.
  util::Status Recover(util::Status cause);
  /// Re-Hello + per-session Resume/replay on a freshly dialed fd.
  util::Status ResumeHandshake();
  /// One session's Resume round trip + journal replay.
  util::Status ResumeSession(uint64_t id, Session* session);
  int Dial();
  void SleepMs(double ms);
  /// Mints a nonzero trace id for this push when sampling selects it
  /// (options.tracer set, trace_sample_period > 0), else returns 0.
  uint64_t MaybeMintTraceId();
  /// Records the root client_push_rtt span for a scored point.
  void RecordRootSpan(const SentPoint& point);

  int fd_ = -1;
  ClientOptions options_;
  FrameDecoder decoder_;
  std::unordered_map<uint64_t, Session> sessions_;
  uint64_t next_session_ = 0;
  uint64_t next_wire_seq_ = 1;
  uint64_t next_token_ = 1;
  uint64_t waiting_token_ = 0;  // barrier's outstanding token, 0 = none
  bool token_seen_ = false;
  // ResumeHandshake's outstanding ResumeAck wait.
  bool awaiting_resume_ack_ = false;
  uint64_t resume_ack_session_ = 0;
  uint64_t resume_ack_offset_ = 0;
  // TryPush probe: the wire_seq whose fate the barrier is watching.
  uint64_t probe_wire_seq_ = 0;
  bool probe_rejected_ = false;
  RejectReason probe_reason_ = RejectReason::kSessionFull;
  // Admin barrier: the outstanding command's token and its ack payload.
  bool awaiting_admin_ = false;
  uint64_t admin_token_ = 0;
  uint64_t admin_result_ = 0;
  std::string admin_message_;
  util::Status fatal_;
  ClientStats stats_;
  // Registry mirrors of the ClientStats counters (client_* series). The
  // struct stays authoritative for the per-instance stats() snapshot; the
  // mirrors feed the shared exposition. Bound in the constructor.
  obs::Counter* m_pushes_sent_ = nullptr;
  obs::Counter* m_retransmits_ = nullptr;
  obs::Counter* m_rejects_seen_ = nullptr;
  obs::Counter* m_polls_sent_ = nullptr;
  obs::Counter* m_frames_received_ = nullptr;
  obs::Counter* m_bytes_sent_ = nullptr;
  obs::Counter* m_bytes_received_ = nullptr;
  obs::Counter* m_reconnects_ = nullptr;
  obs::Counter* m_dup_scores_ = nullptr;
  // Trace sampling state: pushes since the last minted id, and a nonce
  // mixed with client_id so two clients never collide on trace ids.
  int64_t trace_countdown_ = 0;
  uint64_t trace_nonce_ = 0;
  int64_t total_inflight_ = 0;
  ScoreCallback score_cb_;
  RejectCallback reject_cb_;
  // --- Continuity ---
  // Set by HandleFrame when the stream itself proves the transport is bad
  // (score offset gap); ReadOnce converts it into a Recover.
  bool transport_broken_ = false;
  std::string transport_reason_;
  uint64_t client_id_ = 0;
  uint64_t epoch_ = 0;  // bumped per successful redial; barriers re-send
  bool in_recovery_ = false;
  util::Rng rng_;
  std::string tcp_host_;  // original endpoint for the default dialer
  int tcp_port_ = -1;
  std::shared_ptr<FaultConnection> fault_conn_;
};

}  // namespace net
}  // namespace causaltad

#endif  // CAUSALTAD_NET_CLIENT_H_
