// StreamingService tests: sharding parity against a single
// StreamingBatcher (N=4 shards + pump threads, interleaved bursts with
// backpressure engaged), backpressure/shedding statuses, ops-counter
// sanity, fake-clock deadline bounds, and shutdown-flush.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "models/scorer.h"
#include "serve/service.h"
#include "serve/streaming.h"

namespace causaltad {
namespace {

using core::CausalTad;
using eval::BuildExperiment;
using eval::ExperimentData;
using eval::Scale;
using eval::XianConfig;
using serve::PushStatus;
using serve::ServiceOptions;
using serve::SessionId;
using serve::StreamingBatcher;
using serve::StreamingService;
using serve::StreamingSession;

const ExperimentData& Data() {
  static const ExperimentData* data =
      new ExperimentData(BuildExperiment(XianConfig(Scale::kSmoke)));
  return *data;
}

const CausalTad* FittedCausal() {
  static const models::TrajectoryScorer* scorer = [] {
    auto owned = eval::MakeScorer("CausalTAD", Data(), Scale::kSmoke);
    models::FitOptions options;
    options.epochs = 2;
    options.lr = 3e-3f;
    options.seed = 17;
    owned->Fit(Data().train, options);
    return owned.release();
  }();
  return dynamic_cast<const CausalTad*>(scorer);
}

/// Relative parity tolerance (scores are float32 sums; see streaming_test).
double Tol(double reference, double rel = 1e-6) {
  return rel * std::max(1.0, std::abs(reference));
}

std::vector<traj::Trip> ParityTrips() {
  std::vector<traj::Trip> trips = eval::Subsample(Data().id_test, 6, 7);
  const auto detours = eval::Subsample(Data().id_detour, 2, 8);
  trips.insert(trips.end(), detours.begin(), detours.end());
  return trips;
}

/// Reference scores from one single-consumer StreamingBatcher.
std::vector<std::vector<double>> BatcherReference(
    const CausalTad* causal, const std::vector<traj::Trip>& trips) {
  StreamingBatcher batcher(causal);
  std::vector<StreamingSession> sessions;
  for (const auto& trip : trips) sessions.push_back(batcher.Begin(trip));
  for (size_t i = 0; i < trips.size(); ++i) {
    for (const auto segment : trips[i].route.segments) {
      sessions[i].Push(segment);
    }
    sessions[i].End();
  }
  batcher.Flush();
  std::vector<std::vector<double>> scores(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) scores[i] = sessions[i].Poll();
  return scores;
}

TEST(ServiceTest, ShardedPumpedParityWithSingleBatcher) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);

  ServiceOptions options;
  options.num_shards = 4;
  options.pump = true;
  options.max_session_pending = 2;  // tight, so backpressure engages
  options.max_shard_queued = 1024;
  options.batcher.max_batch_rows = 8;
  options.batcher.max_delay_ms = 0.25;
  StreamingService service(causal, options);
  EXPECT_EQ(service.num_shards(), 4);

  // Interleaved bursts: every sweep tries to push a 3-point burst per
  // session; rejected pushes retry on a later sweep while the pump
  // threads drain.
  std::vector<SessionId> ids;
  for (const auto& trip : trips) ids.push_back(service.Begin(trip));
  std::vector<size_t> fed(trips.size(), 0);
  std::vector<bool> ended(trips.size(), false);
  bool done = false;
  while (!done) {
    done = true;
    for (size_t i = 0; i < trips.size(); ++i) {
      const size_t route = trips[i].route.segments.size();
      for (int burst = 0; burst < 3 && fed[i] < route; ++burst) {
        if (service.Push(ids[i], trips[i].route.segments[fed[i]]) !=
            PushStatus::kAccepted) {
          std::this_thread::yield();
          break;
        }
        ++fed[i];
      }
      if (fed[i] < route) {
        done = false;
      } else if (!ended[i]) {
        service.End(ids[i]);
        ended[i] = true;
      }
    }
  }
  service.Shutdown();

  const serve::ServiceStats stats = service.stats();
  EXPECT_GT(stats.rejected_session_full, 0)
      << "backpressure never engaged; tighten the test's bounds";
  EXPECT_EQ(service.queued_points(), 0);

  for (size_t i = 0; i < trips.size(); ++i) {
    const std::vector<double> scores = service.Poll(ids[i]);
    ASSERT_EQ(scores.size(), reference[i].size()) << "trip " << i;
    for (size_t k = 0; k < scores.size(); ++k) {
      EXPECT_NEAR(scores[k], reference[i][k], Tol(reference[i][k]))
          << "trip=" << i << " k=" << k + 1;
    }
  }
}

TEST(ServiceTest, PushReportsBackpressureAndShedding) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  const traj::Trip& trip = trips[0];
  ASSERT_GE(trip.route.size(), 3);

  ServiceOptions options;
  options.num_shards = 1;  // both sessions share the shard
  options.pump = false;
  options.max_session_pending = 2;
  options.max_shard_queued = 3;
  StreamingService service(causal, options);

  const SessionId a = service.Begin(trip);
  const SessionId b = service.Begin(trip);
  EXPECT_EQ(service.Push(a, trip.route.segments[0]), PushStatus::kAccepted);
  EXPECT_EQ(service.Push(a, trip.route.segments[1]), PushStatus::kAccepted);
  // Session a is at its per-session bound; the shard still has room.
  EXPECT_EQ(service.Push(a, trip.route.segments[2]),
            PushStatus::kSessionFull);
  EXPECT_EQ(service.Push(b, trip.route.segments[0]), PushStatus::kAccepted);
  // The shard is at its global bound; even the under-bound session sheds.
  EXPECT_EQ(service.Push(b, trip.route.segments[1]), PushStatus::kShardFull);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.points_accepted, 3);
  EXPECT_EQ(stats.rejected_session_full, 1);
  EXPECT_EQ(stats.rejected_shard_full, 1);

  // Draining reopens admission.
  service.Flush();
  EXPECT_EQ(service.Push(a, trip.route.segments[2]), PushStatus::kAccepted);
  service.Flush();
  service.End(a);
  service.End(b);
}

TEST(ServiceTest, FakeClockDeadlineBoundsPointWait) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  const traj::Trip& trip = trips[0];
  ASSERT_GE(trip.route.size(), 3);
  double now_ms = 0.0;
  ServiceOptions options;
  options.num_shards = 1;
  options.pump = false;  // the test is the pump; the clock is fake
  options.batcher.max_batch_rows = 4;
  options.batcher.max_delay_ms = 5.0;
  options.batcher.now_ms = [&now_ms] { return now_ms; };
  StreamingService service(causal, options);

  // A full batch is admitted immediately — no deadline wait.
  std::vector<SessionId> full;
  for (int i = 0; i < 4; ++i) {
    full.push_back(service.Begin(trip));
    EXPECT_EQ(service.Push(full.back(), trip.route.segments[0]),
              PushStatus::kAccepted);
  }
  EXPECT_EQ(service.StepAll(), 4);

  // A below-batch burst waits at most max_delay_ms past each point's
  // enqueue, not k·max_delay_ms for the tail.
  const SessionId burst = service.Begin(trip);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(service.Push(burst, trip.route.segments[k]),
              PushStatus::kAccepted);
  }
  now_ms = 4.9;
  EXPECT_EQ(service.StepAll(), 0);  // inside the deadline
  now_ms = 5.1;
  // All three burst points are past the deadline; they drain on
  // consecutive passes without the clock advancing.
  EXPECT_EQ(service.StepAll(), 1);
  EXPECT_EQ(service.StepAll(), 1);
  EXPECT_EQ(service.StepAll(), 1);
  EXPECT_EQ(service.queued_points(), 0);
  EXPECT_EQ(service.Poll(burst).size(), 3u);
}

TEST(ServiceTest, CountersAndHistogramSanity) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  ServiceOptions options;
  options.num_shards = 2;
  options.pump = false;
  options.max_session_pending = 0;  // unbounded: count exactness
  options.max_shard_queued = 0;
  options.batcher.max_batch_rows = 16;
  StreamingService service(causal, options);

  int64_t total = 0;
  std::vector<SessionId> ids;
  for (const auto& trip : trips) {
    ids.push_back(service.Begin(trip));
    for (const auto segment : trip.route.segments) {
      ASSERT_EQ(service.Push(ids.back(), segment), PushStatus::kAccepted);
      ++total;
    }
    service.End(ids.back());
  }
  service.Flush();

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_begun, static_cast<int64_t>(trips.size()));
  EXPECT_EQ(stats.points_accepted, total);
  EXPECT_EQ(stats.points_scored, total);
  EXPECT_EQ(stats.rejected_session_full, 0);
  EXPECT_EQ(stats.rejected_shard_full, 0);
  EXPECT_GT(stats.steps, 0);
  EXPECT_GT(stats.step_occupancy, 0.0);
  EXPECT_LE(stats.step_occupancy, 1.0);
  EXPECT_GT(stats.points_per_sec, 0.0);
  EXPECT_GT(stats.queue_wait_p50_ms, 0.0);
  EXPECT_LE(stats.queue_wait_p50_ms, stats.queue_wait_p95_ms);
  EXPECT_LE(stats.queue_wait_p95_ms, stats.queue_wait_p99_ms);
}

TEST(ServiceTest, ShutdownFlushesAllShards) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  auto service = std::make_unique<StreamingService>(causal, [] {
    ServiceOptions options;
    options.num_shards = 4;
    options.pump = true;
    options.max_session_pending = 0;  // queue everything, then shut down
    options.max_shard_queued = 0;
    options.batcher.max_delay_ms = 50.0;  // pump mostly idle: queues build
    return options;
  }());

  std::vector<SessionId> ids;
  for (const auto& trip : trips) {
    ids.push_back(service->Begin(trip));
    for (const auto segment : trip.route.segments) {
      ASSERT_EQ(service->Push(ids.back(), segment), PushStatus::kAccepted);
    }
    service->End(ids.back());
  }
  service->Shutdown();  // must flush every queued point on every shard
  EXPECT_EQ(service->queued_points(), 0);
  for (size_t i = 0; i < trips.size(); ++i) {
    const std::vector<double> scores = service->Poll(ids[i]);
    ASSERT_EQ(static_cast<int64_t>(scores.size()), trips[i].route.size())
        << "trip " << i;
    const double reference = causal->Score(trips[i], trips[i].route.size());
    EXPECT_NEAR(scores.back(), reference, Tol(reference)) << "trip " << i;
  }
  // Sessions were ended and fully polled: nothing should stay tracked.
  EXPECT_EQ(service->tracked_sessions(), 0);
  service.reset();  // double Shutdown via the destructor is a no-op
}

// Multi-producer soak: >= 8 threads drive one StreamingService at once
// (the matching wire-level soak — 8 net::Client connections over one
// net::Server loopback — lives in net_test.cc). Every producer owns its
// sessions; the assertions are no deadlock (the test completing), no
// lost or duplicated score deltas, and per-point parity with a
// single-producer replay.
TEST(ServiceTest, MultiProducerSoakMatchesSingleProducerReplay) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);

  ServiceOptions options;
  options.num_shards = 2;
  options.pump = true;
  options.max_session_pending = 4;  // tight: producers contend and retry
  options.batcher.max_batch_rows = 16;
  options.batcher.max_delay_ms = 0.25;
  StreamingService service(causal, options);

  constexpr int kProducers = 8;
  std::vector<std::vector<SessionId>> ids(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Each producer streams every parity trip through its own sessions.
      ids[p].reserve(trips.size());
      for (const auto& trip : trips) ids[p].push_back(service.Begin(trip));
      for (size_t i = 0; i < trips.size(); ++i) {
        for (const auto segment : trips[i].route.segments) {
          while (service.Push(ids[p][i], segment) != PushStatus::kAccepted) {
            std::this_thread::yield();
          }
        }
        service.End(ids[p][i]);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  service.Shutdown();

  int64_t points = 0;
  for (const auto& trip : trips) points += trip.route.size();
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.points_accepted, kProducers * points);
  EXPECT_EQ(stats.points_scored, kProducers * points);  // none lost/duped
  for (int p = 0; p < kProducers; ++p) {
    for (size_t i = 0; i < trips.size(); ++i) {
      const std::vector<double> scores = service.Poll(ids[p][i]);
      ASSERT_EQ(scores.size(), reference[i].size())
          << "producer=" << p << " trip=" << i;
      for (size_t k = 0; k < scores.size(); ++k) {
        EXPECT_NEAR(scores[k], reference[i][k], Tol(reference[i][k]))
            << "producer=" << p << " trip=" << i << " k=" << k + 1;
      }
    }
  }
  EXPECT_EQ(service.tracked_sessions(), 0);
}

// Regression (PR 5): a Push racing Shutdown could be accepted after the
// pumps joined and the final flush ran — the point sat queued forever and
// its score was lost. Push after Shutdown must be terminal instead.
TEST(ServiceTest, PushAfterShutdownIsTerminalNotSilentlyDropped) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  const traj::Trip& trip = trips[0];
  ASSERT_GE(trip.route.size(), 2);

  StreamingService service(causal, ServiceOptions{});
  const SessionId id = service.Begin(trip);
  ASSERT_EQ(service.Push(id, trip.route.segments[0]), PushStatus::kAccepted);
  service.Shutdown();
  // On the unfixed ordering this returned kAccepted and left the point
  // queued with every pump dead.
  EXPECT_EQ(service.Push(id, trip.route.segments[1]), PushStatus::kShutdown);
  EXPECT_EQ(service.queued_points(), 0);
  EXPECT_EQ(service.Poll(id).size(), 1u);  // the accepted point was scored
}

// The same race, driven concurrently: every Push that returned kAccepted
// must have a score after Shutdown, no matter how the producers interleave
// with it.
TEST(ServiceTest, ShutdownRaceNeverLosesAcceptedPushes) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();

  ServiceOptions options;
  options.num_shards = 2;
  options.pump = true;
  options.max_session_pending = 0;  // only shutdown can reject
  options.max_shard_queued = 0;
  StreamingService service(causal, options);

  constexpr int kProducers = 8;
  std::vector<SessionId> ids(kProducers);
  std::vector<int64_t> accepted(kProducers, 0);
  for (int p = 0; p < kProducers; ++p) {
    ids[p] = service.Begin(trips[p % trips.size()]);
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const auto& segments = trips[p % trips.size()].route.segments;
      // Feed the route over and over is not legal (transitions must chain),
      // so walk it once per session; most producers are still mid-route
      // when Shutdown lands.
      for (const auto segment : segments) {
        const PushStatus status = service.Push(ids[p], segment);
        if (status == PushStatus::kShutdown) break;
        EXPECT_EQ(status, PushStatus::kAccepted);
        if (status != PushStatus::kAccepted) break;
        ++accepted[p];
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.Shutdown();
  for (auto& producer : producers) producer.join();

  EXPECT_EQ(service.queued_points(), 0);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(static_cast<int64_t>(service.Poll(ids[p]).size()), accepted[p])
        << "producer " << p;
  }
}

// A second, differently-fitted model for hot-swap tests.
const CausalTad* FittedCausalV2() {
  static const models::TrajectoryScorer* scorer = [] {
    auto owned = eval::MakeScorer("CausalTAD", Data(), Scale::kSmoke);
    models::FitOptions options;
    options.epochs = 3;
    options.lr = 2e-3f;
    options.seed = 99;
    owned->Fit(Data().train, options);
    return owned.release();
  }();
  return dynamic_cast<const CausalTad*>(scorer);
}

// Zero-downtime hot swap under live load: sessions begun before SwapModel
// stay pinned to the old generation and finish on the OLD weights; sessions
// begun after it score on the NEW weights — both at exact parity with
// single-model runs. Once the old sessions drain, the pump retires the old
// generation on every shard.
TEST(ServiceTest, HotSwapUnderLoadPinsSessionsToGenerations) {
  const CausalTad* old_model = FittedCausal();
  const CausalTad* new_model = FittedCausalV2();
  ASSERT_NE(old_model, nullptr);
  ASSERT_NE(new_model, nullptr);
  ASSERT_NE(old_model, new_model);
  const auto trips = ParityTrips();
  const auto old_reference = BatcherReference(old_model, trips);
  const auto new_reference = BatcherReference(new_model, trips);

  ServiceOptions options;
  options.num_shards = 2;
  options.pump = true;
  options.max_session_pending = 0;  // unbounded: no backpressure here
  options.max_shard_queued = 0;
  options.batcher.max_batch_rows = 8;
  options.batcher.max_delay_ms = 0.25;
  StreamingService service(old_model, options);
  EXPECT_EQ(service.current_model(), old_model);

  // Pre-swap sessions, half fed while the old model serves.
  std::vector<SessionId> pre;
  for (const auto& trip : trips) pre.push_back(service.Begin(trip));
  for (size_t i = 0; i < trips.size(); ++i) {
    const auto& segs = trips[i].route.segments;
    for (size_t k = 0; k < segs.size() / 2; ++k) {
      ASSERT_EQ(service.Push(pre[i], segs[k]), PushStatus::kAccepted);
    }
  }

  ASSERT_TRUE(service.SwapModel(new_model));
  EXPECT_EQ(service.current_model(), new_model);
  EXPECT_EQ(service.stats().model_swaps, 1);
  EXPECT_EQ(service.stats().generations_live, 2 * 2);  // 2 gens x 2 shards

  // Post-swap sessions interleave with the pre-swap tails.
  std::vector<SessionId> post;
  for (const auto& trip : trips) post.push_back(service.Begin(trip));
  for (size_t i = 0; i < trips.size(); ++i) {
    const auto& segs = trips[i].route.segments;
    for (size_t k = segs.size() / 2; k < segs.size(); ++k) {
      ASSERT_EQ(service.Push(pre[i], segs[k]), PushStatus::kAccepted);
    }
    for (const auto segment : segs) {
      ASSERT_EQ(service.Push(post[i], segment), PushStatus::kAccepted);
    }
    service.End(pre[i]);
    service.End(post[i]);
  }

  // Drain both generations through the live pump.
  auto collect = [&](SessionId id, size_t want) {
    std::vector<double> scores;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (scores.size() < want &&
           std::chrono::steady_clock::now() < deadline) {
      const auto polled = service.Poll(id);
      scores.insert(scores.end(), polled.begin(), polled.end());
      if (polled.empty()) std::this_thread::yield();
    }
    return scores;
  };
  for (size_t i = 0; i < trips.size(); ++i) {
    const auto pre_scores = collect(pre[i], old_reference[i].size());
    ASSERT_EQ(pre_scores.size(), old_reference[i].size()) << "pre " << i;
    for (size_t k = 0; k < pre_scores.size(); ++k) {
      EXPECT_NEAR(pre_scores[k], old_reference[i][k],
                  Tol(old_reference[i][k]))
          << "pre-swap trip " << i << " k=" << k;
    }
    const auto post_scores = collect(post[i], new_reference[i].size());
    ASSERT_EQ(post_scores.size(), new_reference[i].size()) << "post " << i;
    for (size_t k = 0; k < post_scores.size(); ++k) {
      EXPECT_NEAR(post_scores[k], new_reference[i][k],
                  Tol(new_reference[i][k]))
          << "post-swap trip " << i << " k=" << k;
    }
  }

  // With every pre-swap session ended and fully polled, the pump retires
  // the drained old generation on each shard.
  const auto retire_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.stats().generations_retired < 2 &&
         std::chrono::steady_clock::now() < retire_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.stats().generations_retired, 2);
  EXPECT_EQ(service.stats().generations_live, 2);
  service.Shutdown();
  EXPECT_FALSE(service.SwapModel(old_model)) << "swap after shutdown";
}

// The adaptive deadline controller on a fake clock: sustained queue waits
// above the p95 target halve the shard deadline (down to min_delay_ms),
// waits far below it double the deadline back toward the cap. Each move is
// bounded to 2x per adapt interval.
TEST(ServiceTest, AdaptiveDeadlineTracksQueueWaitP95) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  const traj::Trip& trip = trips[0];
  ASSERT_GE(trip.route.size(), 4);

  double now_ms = 0.0;
  ServiceOptions options;
  options.num_shards = 1;
  options.pump = false;  // the test is the pump; the clock is fake
  options.batcher.max_batch_rows = 1;  // admission wait == queue wait
  options.batcher.max_delay_ms = 8.0;
  options.batcher.now_ms = [&now_ms] { return now_ms; };
  options.target_queue_wait_p95_ms = 1.0;
  options.adapt_interval_ms = 10.0;
  options.adapt_min_samples = 4;
  options.min_delay_ms = 0.5;
  options.max_delay_ms_cap = 50.0;
  StreamingService service(causal, options);
  EXPECT_DOUBLE_EQ(service.shard_delay_ms(0), 8.0);

  // Four points enqueued at t, admitted 20ms late: p95 >> target.
  auto slow_interval = [&] {
    const SessionId id = service.Begin(trip);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(service.Push(id, trip.route.segments[k]),
                PushStatus::kAccepted);
    }
    now_ms += 20.0;
    for (int k = 0; k < 4; ++k) EXPECT_EQ(service.StepAll(), 1);
    service.AdaptDeadlines();
  };
  slow_interval();
  EXPECT_DOUBLE_EQ(service.shard_delay_ms(0), 4.0);  // halved, not jumped

  // Four points admitted with ~zero wait: p95 far below target, deadline
  // doubles back.
  const SessionId fast = service.Begin(trip);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(service.Push(fast, trip.route.segments[k]),
              PushStatus::kAccepted);
    EXPECT_EQ(service.StepAll(), 1);  // batch_rows=1: admits immediately
  }
  now_ms += 10.0;
  service.AdaptDeadlines();
  EXPECT_DOUBLE_EQ(service.shard_delay_ms(0), 8.0);

  // Sustained overload walks the deadline down to the floor and holds.
  for (int round = 0; round < 5; ++round) slow_interval();
  EXPECT_DOUBLE_EQ(service.shard_delay_ms(0), 0.5);
  service.Shutdown();
}

}  // namespace
}  // namespace causaltad
