#ifndef CAUSALTAD_CORE_TG_VAE_H_
#define CAUSALTAD_CORE_TG_VAE_H_

#include <memory>
#include <span>
#include <vector>

#include "nn/modules.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"
#include "util/random.h"

namespace causaltad {
namespace core {

/// Trajectory Generation VAE configuration (paper §V-B).
struct TgVaeConfig {
  int64_t vocab = 0;  // number of road segments; required
  int64_t emb_dim = 48;
  int64_t hidden_dim = 64;
  int64_t latent_dim = 32;
  /// Ablation: reconstruct the SD pair from the posterior (guards against
  /// posterior collapse; paper §V-B(1)).
  bool use_sd_decoder = true;
  /// Ablation: mask next-segment prediction to road-network successors
  /// (paper §V-B(2)). When false a full-vocabulary softmax is used.
  bool road_constrained = true;
};

/// TG-VAE: estimates the likelihood P(c, t) of Eq. (2).
///
/// Architecture (paper Fig. 3, upper-left):
///  * SD encoder Φe    — Q1(R | c): MLP over [Ec(s); Ec(d)] → (μ_r, σ_r).
///  * SD decoder Φc    — P(c | r): predicts ŝ and d̂ from r.
///  * Trajectory decoder Φt — P(t | r): GRU over Er(t_j) with h_0 = f(r);
///    the state after consuming t_j predicts t_{j+1} over the successors of
///    t_j only (road-constrained prediction).
///
/// s and d are the first and last road segments of the trajectory (the trip
/// endpoints fixed when the ride-hailing order is placed).
class TgVae : public nn::Module {
 public:
  TgVae(const roadnet::RoadNetwork* network, const TgVaeConfig& config,
        util::Rng* rng);

  /// Training loss L1(c,t) = H(ŝ,s) + H(d̂,d) + Σ H(t̂_j, t_j) + KL.
  /// The latent is sampled via reparameterization from `rng`.
  nn::Var Loss(const traj::Trip& trip, util::Rng* rng) const;

  /// Minibatched Loss on one tape: all SD pairs encoded as one batch, the
  /// route decoder rolled as a masked [B, hidden] batch (batched fused GRU
  /// steps), and every live step's road-constrained CE reduced by a single
  /// subset-softmax op. Returns the sum of the per-trip losses; gradients
  /// match per-trip Loss accumulation to float rounding.
  nn::Var LossBatch(std::span<const traj::Trip* const> trips,
                    util::Rng* rng) const;

  /// Inference-time score decomposition with r = posterior mean.
  struct ScoreParts {
    double sd_nll = 0.0;  // H(ŝ,s) + H(d̂,d)
    double kl = 0.0;
    /// step_nll[j] = -log P(t_{j+1} | r, t_{<=j}); size n-1.
    std::vector<double> step_nll;

    /// Negative ELBO of the first `prefix_len` segments.
    double PrefixScore(int64_t prefix_len) const;
  };
  ScoreParts Score(const traj::Trip& trip) const;

  /// Batched inference scoring on the no-grad fast path: encodes all SD
  /// pairs as one batch (deduplicated) and rolls every trip through one
  /// [B, hidden] decoder state (fused GRU steps) with per-row
  /// successor-masked next-segment prediction. parts[i] matches
  /// Score(trips[i]). A non-empty `prefix_lens` caps row i's decoding at
  /// the steps PrefixScore(prefix_lens[i]) needs (rows leave the batch
  /// once their budget is spent); empty decodes full routes.
  std::vector<ScoreParts> ScoreBatch(
      std::span<const traj::Trip> trips,
      std::span<const int64_t> prefix_lens = {}) const;

  /// --- Online pieces (used by CausalTad::OnlineSession) ---

  /// Per-trip constant part: posterior mean r from the SD pair, the initial
  /// decoder state h0, and sd_nll + kl.
  struct TripContext {
    nn::Var h0;
    double sd_nll = 0.0;
    double kl = 0.0;
  };
  TripContext BeginTrip(roadnet::SegmentId source,
                        roadnet::SegmentId destination) const;

  /// One O(d² + deg·d) decoder step: consumes `current` and returns
  /// -log P(next | ·) plus the updated hidden state. Taped reference path;
  /// the serving engines use StepNllFused / StepNllRows instead.
  double StepNll(roadnet::SegmentId current, roadnet::SegmentId next,
                 nn::Var* hidden) const;

  /// --- Streaming serving primitives (src/serve, CausalTad sessions) ---

  /// Copy of the output weights transposed to [vocab, hidden], so each
  /// successor-masked logit is one contiguous dot instead of a
  /// vocab-strided column walk. Serving engines build this once per fitted
  /// model (CausalTad re-derives it next to the scaling table) and pass it
  /// to StepNllFused / StepNllRows.
  std::vector<float> PackedOutWeightsTransposed() const;

  /// Batched streaming advance over a shared state matrix: entry k consumes
  /// transition current[k] -> next[k] on row rows[k] of `states`
  /// ([*, hidden] row-major, rows distinct within one call), updating the
  /// row in place and writing -log P(next[k] | r, t_<=) into nll[k]. One
  /// fused GRU step plus one successor-masked softmax per entry, no tape;
  /// entries shard across the worker pool. `wt` is
  /// PackedOutWeightsTransposed() data (unused when road constraining is
  /// off — the full-vocabulary logits go through the packed MatMul).
  void StepNllRows(std::span<const roadnet::SegmentId> current,
                   std::span<const roadnet::SegmentId> next,
                   std::span<const int64_t> rows, float* states,
                   const float* wt, double* nll) const;

  /// Single-session fused twin of StepNll: advances the [1, hidden] state
  /// in place with no tape allocation. This is the O(1)-per-point update of
  /// the paper's online protocol (§V-D).
  double StepNllFused(roadnet::SegmentId current, roadnet::SegmentId next,
                      nn::Tensor* hidden, const float* wt) const;

  /// Re-quantizes the int8 serving copies of the embedding tables from the
  /// current fp32 weights (no-op cost-wise beyond the copy; tables stay
  /// unused until nn::Int8EmbeddingsEnabled()). Serving caches call this
  /// whenever the weights may have changed (CausalTad rebuilds it next to
  /// the transposed output weights).
  void RefreshQuantizedEmbeddings();

  const TgVaeConfig& config() const { return config_; }

 private:
  struct Forwarded {
    nn::Var mu, logvar, r;
  };
  Forwarded EncodeSd(roadnet::SegmentId s, roadnet::SegmentId d,
                     util::Rng* rng) const;
  nn::Var SdDecoderNll(const nn::Var& r, roadnet::SegmentId s,
                       roadnet::SegmentId d) const;
  /// CE of predicting `next` from `hidden` after consuming `current`.
  nn::Var StepCe(const nn::Var& hidden, roadnet::SegmentId current,
                 roadnet::SegmentId next) const;

  /// Single-threaded ScoreBatch body for one shard of rows: reads
  /// trips[rows[a]] / prefix_lens[rows[a]] and writes out[rows[a]].
  /// ScoreBatch builds the shards (length-bucketed by decode steps when
  /// enabled) and runs one chunk per worker.
  void ScoreBatchChunk(std::span<const traj::Trip> trips,
                       std::span<const int64_t> prefix_lens,
                       std::span<const int64_t> rows, ScoreParts* out) const;

  const roadnet::RoadNetwork* network_;
  TgVaeConfig config_;
  nn::Embedding sd_emb_;     // Ec
  nn::Embedding route_emb_;  // Er
  nn::Linear enc_fc_;
  nn::Linear mu_head_;
  nn::Linear lv_head_;
  nn::Linear dec_fc_;
  nn::Linear head_s_;
  nn::Linear head_d_;
  nn::Linear h0_proj_;
  nn::GruCell gru_;
  nn::Linear out_;
};

}  // namespace core
}  // namespace causaltad

#endif  // CAUSALTAD_CORE_TG_VAE_H_
