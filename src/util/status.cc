#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace causaltad {
namespace util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace util
}  // namespace causaltad
