#ifndef CAUSALTAD_TRAJ_MAP_MATCHING_H_
#define CAUSALTAD_TRAJ_MAP_MATCHING_H_

#include <vector>

#include "geo/geo.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"
#include "traj/trajectory.h"
#include "util/status.h"

namespace causaltad {
namespace traj {

/// HMM map-matcher parameters (Newson–Krumm style).
struct MapMatcherConfig {
  /// GPS noise scale for the Gaussian emission model (meters).
  double gps_sigma_m = 20.0;
  /// Candidate segments are those within this radius of a fix (meters).
  double candidate_radius_m = 80.0;
  /// Scale of the exponential transition model over
  /// |network_distance - great_circle_distance| (meters).
  double transition_beta_m = 60.0;
  /// Maximum candidates kept per fix (nearest first).
  int max_candidates = 8;
  /// Network-distance search radius multiplier (times the GPS displacement)
  /// when evaluating transitions.
  double search_radius_factor = 6.0;
};

/// Viterbi HMM map matcher: emission = Gaussian on point-to-segment
/// distance, transition = exponential on the difference between network
/// travel distance and great-circle displacement. Gaps between consecutive
/// chosen segments are stitched with shortest paths, so the output is a
/// valid map-matched trajectory (Definition 2 of the paper).
class HmmMapMatcher {
 public:
  HmmMapMatcher(const roadnet::RoadNetwork* network,
                const MapMatcherConfig& config);

  /// Matches a GPS trace to a route. Fails (Status) when the trace is empty,
  /// no fix has candidate segments, or the Viterbi path cannot be stitched.
  util::StatusOr<Route> Match(const GpsTrace& trace) const;

  /// Candidate segments within the configured radius of `p`, nearest first.
  std::vector<roadnet::SegmentId> Candidates(const geo::LatLon& p) const;

 private:
  struct CellIndex;

  double SegmentDistanceMeters(const geo::LatLon& p,
                               roadnet::SegmentId seg) const;

  const roadnet::RoadNetwork* network_;
  MapMatcherConfig config_;
  roadnet::ShortestPathEngine engine_;
  geo::LocalProjection proj_;
  // Uniform-grid spatial index over segment bounding boxes.
  double cell_size_m_;
  double min_x_, min_y_;
  int nx_ = 0, ny_ = 0;
  std::vector<std::vector<roadnet::SegmentId>> cells_;
  // Projected segment endpoints, by segment id.
  std::vector<geo::Vec2> seg_a_, seg_b_;
};

}  // namespace traj
}  // namespace causaltad

#endif  // CAUSALTAD_TRAJ_MAP_MATCHING_H_
