#include "traj/router.h"

#include <cmath>

#include "util/logging.h"

namespace causaltad {
namespace traj {

PreferenceRouter::PreferenceRouter(const roadnet::City* city,
                                   const RouterConfig& config)
    : city_(city), config_(config), engine_(&city->network) {
  CAUSALTAD_CHECK(city != nullptr);
  offpeak_costs_ = BaseCosts(/*time_slot=*/0);
  rush_costs_ = BaseCosts(/*time_slot=*/2);
}

bool PreferenceRouter::IsRushSlot(int slot) {
  return slot == 2 || slot == 3 || slot == 6 || slot == 7;
}

std::vector<double> PreferenceRouter::BaseCosts(int time_slot) const {
  const roadnet::RoadNetwork& net = city_->network;
  std::vector<double> costs(net.num_segments());
  const bool rush = IsRushSlot(time_slot);
  for (int64_t s = 0; s < net.num_segments(); ++s) {
    const roadnet::Segment& seg = net.segment(s);
    double cost =
        seg.length_m / std::pow(seg.preference, config_.preference_gamma);
    if (rush && seg.road_class == roadnet::RoadClass::kArterial) {
      cost *= 1.0 + config_.rush_arterial_penalty;
    }
    costs[s] = cost;
  }
  return costs;
}

Route PreferenceRouter::Sample(roadnet::NodeId src, roadnet::NodeId dst,
                               int time_slot, util::Rng* rng) const {
  CAUSALTAD_CHECK(rng != nullptr);
  const std::vector<double>& base =
      IsRushSlot(time_slot) ? rush_costs_ : offpeak_costs_;
  const double sigma = rng->Bernoulli(config_.explore_prob)
                           ? config_.explore_sigma
                           : config_.noise_sigma;
  std::vector<double> costs(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    costs[i] = base[i] * std::exp(rng->Gaussian(0, sigma));
  }
  roadnet::RouteResult r = engine_.NodeToNode(src, dst, costs);
  Route route;
  if (r.found) route.segments = std::move(r.segments);
  return route;
}

Route PreferenceRouter::Best(roadnet::NodeId src, roadnet::NodeId dst,
                             int time_slot) const {
  const std::vector<double>& base =
      IsRushSlot(time_slot) ? rush_costs_ : offpeak_costs_;
  roadnet::RouteResult r = engine_.NodeToNode(src, dst, base);
  Route route;
  if (r.found) route.segments = std::move(r.segments);
  return route;
}

}  // namespace traj
}  // namespace causaltad
