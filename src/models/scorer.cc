#include "models/scorer.h"

namespace causaltad {
namespace models {
namespace {

/// Fallback online scorer: replays the growing prefix through Score().
class RescoringOnlineScorer : public OnlineScorer {
 public:
  RescoringOnlineScorer(const TrajectoryScorer* scorer, traj::Trip trip)
      : scorer_(scorer), trip_(std::move(trip)) {
    trip_.route.segments.clear();
  }

  double Update(roadnet::SegmentId segment) override {
    trip_.route.segments.push_back(segment);
    return scorer_->Score(trip_, trip_.route.size());
  }

 private:
  const TrajectoryScorer* scorer_;
  traj::Trip trip_;
};

}  // namespace

std::unique_ptr<OnlineScorer> TrajectoryScorer::BeginTrip(
    const traj::Trip& trip) const {
  return std::make_unique<RescoringOnlineScorer>(this, trip);
}

std::vector<double> TrajectoryScorer::ScoreBatch(
    std::span<const traj::Trip> trips,
    std::span<const int64_t> prefix_lens) const {
  std::vector<double> scores;
  scores.reserve(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    const int64_t prefix =
        i < prefix_lens.size() ? prefix_lens[i] : trips[i].route.size();
    scores.push_back(Score(trips[i], prefix));
  }
  return scores;
}

}  // namespace models
}  // namespace causaltad
