// Reproduces Fig. 7: (a) training scalability — wall-clock time of one
// training epoch as the training-set fraction grows from 20% to 100%
// (linear in the paper); (b) average inference runtime per trajectory at
// different observed ratios (iBOAT is far slower than the learned methods;
// CausalTAD ≈ TG-VAE thanks to the O(1) debiased updates and the
// successor-masked softmax).
//
// Part (b) is registered through google-benchmark so timing gets proper
// repetition handling; part (a) prints a table from single timed epochs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "util/stopwatch.h"

namespace {

using causaltad::core::CausalTad;
using causaltad::core::CausalTadVariant;
using causaltad::core::ScoreVariant;
using causaltad::eval::ExperimentData;
using causaltad::eval::Scale;
using causaltad::eval::Subsample;
using causaltad::eval::TablePrinter;

const ExperimentData& Data() {
  static const ExperimentData* data = [] {
    return new ExperimentData(causaltad::eval::BuildExperiment(
        causaltad::eval::XianConfig(causaltad::eval::ScaleFromEnv())));
  }();
  return *data;
}

void TrainingScalabilityTable(Scale scale) {
  std::printf("== Fig. 7(a) — one-epoch training time vs training-set "
              "fraction (Xi'an, scale=%s) ==\n\n",
              causaltad::eval::ScaleName(scale));
  const std::vector<std::string> names = {"SAE", "VSAE", "GM-VSAE",
                                          "DeepTEA", "CausalTAD"};
  const std::vector<double> fractions = {0.2, 0.4, 0.6, 0.8, 1.0};
  TablePrinter table(
      {"Method", "20%", "40%", "60%", "80%", "100%"});
  table.PrintHeader();
  causaltad::models::FitOptions options =
      causaltad::eval::FitOptionsFor(scale);
  options.epochs = 1;
  for (const std::string& name : names) {
    std::vector<std::string> cells = {name};
    for (const double frac : fractions) {
      const auto subset = Subsample(
          Data().train,
          static_cast<int64_t>(frac * Data().train.size()), 41);
      auto scorer = causaltad::eval::MakeScorer(name, Data(), scale);
      causaltad::util::Stopwatch watch;
      scorer->Fit(subset, options);
      cells.push_back(TablePrinter::Fmt(watch.ElapsedSeconds(), 2) + "s");
    }
    table.PrintRow(cells);
  }
  std::printf("\n");
}

// One online pass over a fixed batch of trajectories, prefix-limited to the
// observed ratio. state.counters report the per-trajectory latency.
void OnlineInference(benchmark::State& state,
                     const causaltad::models::TrajectoryScorer* scorer,
                     double ratio) {
  const auto trips = Subsample(Data().id_test, 40, 42);
  for (auto _ : state) {
    for (const auto& trip : trips) {
      auto session = scorer->BeginTrip(trip);
      const int64_t prefix = std::max<int64_t>(
          1, static_cast<int64_t>(ratio * trip.route.size()));
      double score = 0.0;
      for (int64_t k = 0; k < prefix; ++k) {
        score = session->Update(trip.route.segments[k]);
      }
      benchmark::DoNotOptimize(score);
    }
  }
  state.counters["us_per_traj"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * trips.size(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = causaltad::eval::ScaleFromEnv();
  TrainingScalabilityTable(scale);

  std::printf("== Fig. 7(b) — online inference runtime per trajectory "
              "(google-benchmark; us_per_traj counter) ==\n");
  const auto config = causaltad::eval::XianConfig(scale);
  // Fitted models shared across registered benchmarks.
  static auto iboat =
      causaltad::eval::FitOrLoad("iBOAT", Data(), config.name, scale);
  static auto gmvsae =
      causaltad::eval::FitOrLoad("GM-VSAE", Data(), config.name, scale);
  static auto causal = causaltad::eval::FitOrLoad(
      causaltad::eval::kCausalTadName, Data(), config.name, scale);
  static CausalTadVariant tg_only(dynamic_cast<CausalTad*>(causal.get()),
                                  ScoreVariant::kLikelihoodOnly);

  for (const double ratio : {0.2, 0.6, 1.0}) {
    const std::string suffix = "/ratio=" + TablePrinter::Fmt(ratio, 1);
    benchmark::RegisterBenchmark(
        ("iBOAT" + suffix).c_str(),
        [&, ratio](benchmark::State& s) {
          OnlineInference(s, iboat.get(), ratio);
        });
    benchmark::RegisterBenchmark(
        ("GM-VSAE" + suffix).c_str(),
        [&, ratio](benchmark::State& s) {
          OnlineInference(s, gmvsae.get(), ratio);
        });
    benchmark::RegisterBenchmark(
        ("TG-VAE" + suffix).c_str(),
        [&, ratio](benchmark::State& s) {
          OnlineInference(s, &tg_only, ratio);
        });
    benchmark::RegisterBenchmark(
        ("CausalTAD" + suffix).c_str(),
        [&, ratio](benchmark::State& s) {
          OnlineInference(s, causal.get(), ratio);
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
