#include "net/fault.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace causaltad {
namespace net {
namespace {

uint64_t ResolveSeed(uint64_t seed) {
  if (seed != 0) return seed;
  if (const char* env = std::getenv("CAUSALTAD_FAULT_SEED")) {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed != 0) return parsed;
  }
  return 0x66AC7B1D5ULL;  // fixed default: runs replay without any config
}

}  // namespace

FaultInjector::FaultInjector(FaultOptions options)
    : options_(options), rng_(ResolveSeed(options.seed)) {}

std::shared_ptr<FaultConnection> FaultInjector::Attach() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::shared_ptr<FaultConnection>(
      new FaultConnection(this, rng_.Fork()));
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

FaultConnection::Action FaultConnection::Decide(size_t size,
                                                size_t* keep_bytes,
                                                bool send_side) {
  const FaultOptions& opts = owner_->options_;
  Action action = Action::kPass;
  bool delayed = false;
  size_t keep = size;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (opts.delay_rate > 0.0 && rng_.Bernoulli(opts.delay_rate)) {
      delayed = true;
    }
    if (opts.kill_rate > 0.0 && rng_.Bernoulli(opts.kill_rate)) {
      action = Action::kKill;
    } else if (send_side && size > 0 && opts.drop_rate > 0.0 &&
               rng_.Bernoulli(opts.drop_rate)) {
      action = Action::kDrop;
    } else if (send_side && size > 0 && opts.dup_rate > 0.0 &&
               rng_.Bernoulli(opts.dup_rate)) {
      action = Action::kDuplicate;
    } else if (send_side && size > 1 && opts.truncate_rate > 0.0 &&
               rng_.Bernoulli(opts.truncate_rate)) {
      action = Action::kTruncate;
      keep = 1 + static_cast<size_t>(
                     rng_.UniformInt(static_cast<int64_t>(size - 1)));
    } else if (size > 1 && opts.short_write_rate > 0.0 &&
               rng_.Bernoulli(opts.short_write_rate)) {
      action = Action::kShortWrite;
      const size_t cap = std::min<size_t>(size - 1, 64);
      keep = 1 + static_cast<size_t>(
                     rng_.UniformInt(static_cast<int64_t>(cap)));
    }
  }
  {
    std::lock_guard<std::mutex> lock(owner_->mu_);
    FaultStats& stats = owner_->stats_;
    (send_side ? stats.sends : stats.recvs) += 1;
    switch (action) {
      case Action::kPass:
        break;
      case Action::kDrop:
        ++stats.drops;
        break;
      case Action::kDuplicate:
        ++stats.dups;
        break;
      case Action::kTruncate:
        ++stats.truncates;
        break;
      case Action::kShortWrite:
        ++stats.short_writes;
        break;
      case Action::kKill:
        ++stats.kills;
        break;
    }
    if (delayed) ++stats.delays;
  }
  if (delayed) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(opts.delay_ms));
  }
  *keep_bytes = keep;
  return action;
}

FaultConnection::Action FaultConnection::OnSend(size_t size,
                                                size_t* keep_bytes) {
  return Decide(size, keep_bytes, /*send_side=*/true);
}

FaultConnection::Action FaultConnection::OnRecv(size_t size,
                                                size_t* keep_bytes) {
  // Recv can only be capped, delayed, or killed; the stream-corrupting
  // faults are send-side (Decide gates them on send_side).
  return Decide(size, keep_bytes, /*send_side=*/false);
}

}  // namespace net
}  // namespace causaltad
