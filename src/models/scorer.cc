#include "models/scorer.h"

namespace causaltad {
namespace models {
namespace {

/// Fallback online scorer: replays the growing prefix through Score().
class RescoringOnlineScorer : public OnlineScorer {
 public:
  RescoringOnlineScorer(const TrajectoryScorer* scorer, traj::Trip trip)
      : scorer_(scorer), trip_(std::move(trip)) {
    trip_.route.segments.clear();
  }

  double Update(roadnet::SegmentId segment) override {
    trip_.route.segments.push_back(segment);
    return scorer_->Score(trip_, trip_.route.size());
  }

 private:
  const TrajectoryScorer* scorer_;
  traj::Trip trip_;
};

}  // namespace

std::unique_ptr<OnlineScorer> TrajectoryScorer::BeginTrip(
    const traj::Trip& trip) const {
  return std::make_unique<RescoringOnlineScorer>(this, trip);
}

}  // namespace models
}  // namespace causaltad
