#ifndef CAUSALTAD_EVAL_CORPUS_STATS_H_
#define CAUSALTAD_EVAL_CORPUS_STATS_H_

#include <string>
#include <vector>

#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace causaltad {
namespace eval {

/// Descriptive statistics of a trip corpus relative to a road network.
/// These are the quantities that control whether the paper's confounding
/// phenomenon exists in a dataset (DESIGN.md §5b): how concentrated traffic
/// is, how much of the network is covered, and how long trips are.
struct CorpusStats {
  int64_t num_trips = 0;
  int64_t num_segments_total = 0;  // sum of route lengths
  double mean_trip_len = 0.0;
  int64_t min_trip_len = 0;
  int64_t max_trip_len = 0;

  /// Fraction of network segments visited at least once.
  double coverage = 0.0;
  /// Mean visits per *visited* segment.
  double mean_visits = 0.0;
  /// Gini coefficient of per-segment visit counts (0 = uniform traffic,
  /// -> 1 = all traffic on a few corridors). The confounded generator
  /// should produce clearly nonzero values.
  double visit_gini = 0.0;
  /// Share of segment visits on each road class (arterial/collector/local).
  double class_share[3] = {0.0, 0.0, 0.0};
  /// Number of distinct SD (source,dest) node pairs.
  int64_t distinct_sd_pairs = 0;
};

/// Computes stats over `trips` on `network`.
CorpusStats ComputeCorpusStats(const roadnet::RoadNetwork& network,
                               const std::vector<traj::Trip>& trips);

/// Multi-line human-readable rendering (used by benches and examples).
std::string FormatCorpusStats(const CorpusStats& stats);

}  // namespace eval
}  // namespace causaltad

#endif  // CAUSALTAD_EVAL_CORPUS_STATS_H_
