#include "core/rp_vae.h"

#include <algorithm>
#include <cmath>

#include "nn/init.h"
#include "nn/ops.h"
#include "util/logging.h"

namespace causaltad {
namespace core {

RpVae::RpVae(const RpVaeConfig& config, util::Rng* rng)
    : nn::Module("rpvae"),
      config_(config),
      emb_("emb", config.vocab, config.emb_dim, rng),
      enc_fc_("enc_fc",
              config.emb_dim +
                  (config.num_time_slots > 0 ? config.slot_emb_dim : 0),
              config.hidden_dim, rng),
      mu_head_("mu_head", config.hidden_dim, config.latent_dim, rng),
      lv_head_("lv_head", config.hidden_dim, config.latent_dim, rng),
      dec_("dec", config.latent_dim, config.vocab, rng) {
  CAUSALTAD_CHECK_GT(config.vocab, 0);
  RegisterSubmodule(&emb_);
  RegisterSubmodule(&enc_fc_);
  RegisterSubmodule(&mu_head_);
  RegisterSubmodule(&lv_head_);
  RegisterSubmodule(&dec_);
  if (config.num_time_slots > 0) {
    slot_emb_ = std::make_unique<nn::Embedding>(
        "slot_emb", config.num_time_slots, config.slot_emb_dim, rng);
    RegisterSubmodule(slot_emb_.get());
  }
}

RpVae::Posterior RpVae::Encode(std::span<const int32_t> ids,
                               int time_slot) const {
  nn::Var x = emb_.Forward(ids);  // [n, emb]
  if (time_conditioned()) {
    const std::vector<int32_t> slots(ids.size(),
                                     static_cast<int32_t>(time_slot));
    x = nn::ConcatCols({x, slot_emb_->Forward(slots)});
  }
  const nn::Var hidden = nn::Tanh(enc_fc_.Forward(x));
  Posterior p;
  p.mu = mu_head_.Forward(hidden);
  p.logvar = lv_head_.Forward(hidden);
  return p;
}

nn::Var RpVae::Loss(std::span<const roadnet::SegmentId> segments,
                    util::Rng* rng, int time_slot) const {
  CAUSALTAD_CHECK(!segments.empty());
  std::vector<int32_t> ids(segments.begin(), segments.end());
  const Posterior post = Encode(ids, time_slot);
  const nn::Var z =
      rng != nullptr ? nn::Reparameterize(post.mu, post.logvar, rng) : post.mu;
  const nn::Var logits = dec_.Forward(z);  // [n, vocab]
  return nn::Add(nn::SoftmaxCrossEntropy(logits, ids),
                 nn::KlStandardNormal(post.mu, post.logvar));
}

double RpVae::SegmentNll(roadnet::SegmentId segment, int time_slot) const {
  const std::vector<roadnet::SegmentId> one = {segment};
  return Loss(one, /*rng=*/nullptr, time_slot).value().Item();
}

std::vector<double> RpVae::SegmentNllBatch(
    std::span<const roadnet::SegmentId> segments, int time_slot) const {
  std::vector<double> out(segments.size());
  const nn::InferenceGuard no_grad;
  const int64_t latent = config_.latent_dim;
  // Chunked so the [chunk, vocab] decoder logits stay bounded no matter how
  // many segments the caller batches (the eval harness passes whole test
  // sets at once).
  constexpr size_t kChunk = 2048;
  for (size_t begin = 0; begin < segments.size(); begin += kChunk) {
    const size_t count = std::min(kChunk, segments.size() - begin);
    const std::vector<int32_t> ids(segments.begin() + begin,
                                   segments.begin() + begin + count);
    const Posterior post = Encode(ids, time_slot);
    const nn::Var logits = dec_.Forward(post.mu);  // [count, vocab]
    for (size_t i = 0; i < count; ++i) {
      out[begin + i] =
          static_cast<double>(nn::internal::SoftmaxNllRow(
              logits.value().data() + i * config_.vocab, config_.vocab,
              ids[i])) +
          static_cast<double>(nn::internal::KlStandardNormalRow(
              post.mu.value().data() + i * latent,
              post.logvar.value().data() + i * latent, latent));
    }
  }
  return out;
}

double RpVae::LogScalingFactor(roadnet::SegmentId segment, int num_samples,
                               util::Rng* rng, int time_slot) const {
  CAUSALTAD_CHECK_GT(num_samples, 0);
  const std::vector<int32_t> id = {segment};
  const Posterior post = Encode(id, time_slot);
  const float* mu = post.mu.value().data();
  const float* lv = post.logvar.value().data();
  const int64_t latent = config_.latent_dim;

  // Draw all samples as one [S, latent] batch and decode together.
  nn::Tensor z({num_samples, latent});
  for (int s = 0; s < num_samples; ++s) {
    for (int64_t i = 0; i < latent; ++i) {
      z.At(s, i) = mu[i] + std::exp(0.5f * lv[i]) *
                               static_cast<float>(rng->Gaussian());
    }
  }
  const nn::Var logits = dec_.Forward(nn::Constant(std::move(z)));

  // log E[1/p] = logsumexp_s( -log p_s ) - log S, with
  // log p_s = logit[s, segment] - logsumexp_j logit[s, j].
  const nn::Tensor& lg = logits.value();
  std::vector<double> neg_log_p(num_samples);
  for (int s = 0; s < num_samples; ++s) {
    const float* row = lg.data() + s * config_.vocab;
    double max_v = row[0];
    for (int64_t j = 1; j < config_.vocab; ++j) {
      max_v = std::max<double>(max_v, row[j]);
    }
    double total = 0.0;
    for (int64_t j = 0; j < config_.vocab; ++j) {
      total += std::exp(row[j] - max_v);
    }
    const double log_p = row[segment] - max_v - std::log(total);
    neg_log_p[s] = -log_p;
  }
  double max_nlp = neg_log_p[0];
  for (double v : neg_log_p) max_nlp = std::max(max_nlp, v);
  double acc = 0.0;
  for (double v : neg_log_p) acc += std::exp(v - max_nlp);
  return max_nlp + std::log(acc) - std::log(num_samples);
}

ScalingTable ScalingTable::Build(const RpVae& rp_vae, int64_t vocab,
                                 int num_samples, uint64_t seed) {
  ScalingTable table;
  table.vocab_ = vocab;
  table.num_slots_ =
      rp_vae.time_conditioned() ? rp_vae.config().num_time_slots : 1;
  table.values_.resize(vocab * table.num_slots_);
  util::Rng rng(seed);
  for (int slot = 0; slot < table.num_slots_; ++slot) {
    for (int64_t s = 0; s < vocab; ++s) {
      table.values_[slot * vocab + s] = rp_vae.LogScalingFactor(
          static_cast<roadnet::SegmentId>(s), num_samples, &rng,
          rp_vae.time_conditioned() ? slot : 0);
    }
  }
  return table;
}

void ScalingTable::CenterInPlace() {
  for (int slot = 0; slot < num_slots_; ++slot) {
    double* begin = values_.data() + slot * vocab_;
    double mean = 0.0;
    for (int64_t i = 0; i < vocab_; ++i) mean += begin[i];
    mean /= static_cast<double>(vocab_);
    for (int64_t i = 0; i < vocab_; ++i) begin[i] -= mean;
  }
}

std::vector<double> ScalingTable::Centered(int slot) const {
  CAUSALTAD_CHECK(slot >= 0 && slot < num_slots_);
  const double* begin = values_.data() + slot * vocab_;
  double mean = 0.0;
  for (int64_t i = 0; i < vocab_; ++i) mean += begin[i];
  mean /= static_cast<double>(vocab_);
  std::vector<double> out(vocab_);
  for (int64_t i = 0; i < vocab_; ++i) out[i] = begin[i] - mean;
  return out;
}

}  // namespace core
}  // namespace causaltad
