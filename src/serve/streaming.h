#ifndef CAUSALTAD_SERVE_STREAMING_H_
#define CAUSALTAD_SERVE_STREAMING_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/causal_tad.h"
#include "obs/trace.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"
#include "util/latency_histogram.h"

namespace causaltad {
namespace serve {

/// Serving knobs. See README.md in this directory for the API contract
/// (ordering, deadlines, thread-safety).
struct StreamingOptions {
  /// Hard cap on the sessions advanced by one batched step (the admission
  /// batch size — also the row count of the fused [B, hidden] GRU step).
  int64_t max_batch_rows = 256;
  /// Deadline-bounded admission: StepIfReady() fires a partial batch once
  /// the oldest queued point has waited this long.
  double max_delay_ms = 2.0;
  /// Injectable monotonic clock in milliseconds (tests fake it); null uses
  /// the process steady clock.
  std::function<double()> now_ms;
  /// Cached SD-pair trip contexts (posterior, h0, sd_nll + kl) before the
  /// cache is reset. Concurrent orders between the same endpoints — the
  /// paper's ride-hailing workload — then share one SD encode.
  int64_t sd_cache_capacity = 4096;
  /// Optional queue-wait sink: each scored point's (batch-admission time −
  /// Push time) in ms is recorded here. Must outlive the batcher. Add() is
  /// lock-free, so the StreamingService shares one histogram across all
  /// its shards' pump threads.
  util::LatencyHistogram* queue_wait = nullptr;
  /// Span sink for sampled traced points (null = no tracing). A push that
  /// carries a nonzero trace id records queue_wait / compute / emit spans
  /// here, tagged with trace_where ("shard=2") — the backend-shard legs of
  /// the cross-tier span chain. Must outlive the batcher.
  obs::Tracer* tracer = nullptr;
  std::string trace_where;
};

using SessionId = int64_t;

/// Outcome of a bounded-queue TryPush (the backpressure contract the
/// StreamingService surfaces to callers). Only kAccepted enqueues the
/// point; both rejection statuses leave the session's score stream exactly
/// as it was, so the caller decides whether to retry (kSessionFull — this
/// one trip is producing faster than it drains) or degrade (kShardFull —
/// the whole shard is saturated and admission is shedding load).
enum class PushStatus {
  kAccepted,
  kSessionFull,
  kShardFull,
  /// Terminal: the StreamingService has shut down — the point was not
  /// enqueued and never will be. Only the service returns this (the batcher
  /// has no lifecycle); producers must stop feeding the session.
  kShutdown,
};

class StreamingBatcher;

/// Non-owning handle over one trip's stream inside a StreamingBatcher.
/// Thin forwarding wrapper; copyable, does not End() on destruction.
class StreamingSession {
 public:
  StreamingSession() = default;
  StreamingSession(StreamingBatcher* batcher, SessionId id)
      : batcher_(batcher), id_(id) {}

  void Push(roadnet::SegmentId segment);
  void End();
  std::vector<double> Poll();
  SessionId id() const { return id_; }

 private:
  StreamingBatcher* batcher_ = nullptr;
  SessionId id_ = -1;
};

/// Multi-trip streaming engine: every concurrently-active trip owns one row
/// of a shared [capacity, hidden] state matrix, and one Step() advances all
/// sessions with a queued point by a single fused batched GRU step
/// (TgVae::StepNllRows, sharded across the worker pool) plus per-row
/// successor-masked softmaxes and scaling-table lookups. Per-point cost is
/// O(1) in trip length — this is the paper's online protocol (§V-D) served
/// batched, against CausalTad::BeginTrip's one-session-per-trip sessions.
///
/// Scores match Score(trip, k) / the per-trip online sessions exactly (the
/// same fused kernels run in both; the streaming tests assert parity).
/// kScalingOnly sessions hold no state row — their per-point ELBOs batch
/// through RpVae::SegmentNllBatch per step instead.
class StreamingBatcher {
 public:
  /// Serves the full debiased score (ScoreVariant::kFull, model λ).
  explicit StreamingBatcher(const core::CausalTad* model,
                            StreamingOptions options = {});
  /// Serves an ablation variant (λ ignored unless kFull).
  StreamingBatcher(const core::CausalTad* model, core::ScoreVariant variant,
                   double lambda, StreamingOptions options = {});

  /// Registers a new active trip; its SD pair and departure slot are the
  /// context fixed when the order is placed.
  SessionId BeginSession(roadnet::SegmentId source,
                         roadnet::SegmentId destination, int time_slot);

  /// BeginSession for a prefix REPLAY: the first `emit_skip` scored points
  /// advance the session's state exactly as normal pushes but their scores
  /// are not queued for Poll — the consumer already holds them. This is the
  /// rebuild-session-at-offset path behind net resume: replaying a journaled
  /// prefix through it reproduces the interrupted stream bit-identically
  /// (per-row arithmetic is independent of batch composition) and delivery
  /// restarts at score index emit_skip with no duplicates.
  SessionId BeginSessionAt(roadnet::SegmentId source,
                           roadnet::SegmentId destination, int time_slot,
                           int64_t emit_skip);
  /// Convenience: BeginSession from a trip's route endpoints, wrapped in a
  /// handle.
  StreamingSession Begin(const traj::Trip& trip);

  /// Queues the trip's next observed point. Points of one session are
  /// processed in feed order, at most one per Step (so a session that
  /// pushes a burst drains over several steps while other sessions
  /// interleave).
  void Push(SessionId id, roadnet::SegmentId segment);

  /// Bounded-queue Push: rejects with kSessionFull once the session
  /// already has max_session_pending unscored points, and with kShardFull
  /// once the batcher holds max_queued_points in total (<= 0 disables
  /// either bound). The check and the enqueue are one critical section.
  /// A nonzero trace_id rides the point through admission and records
  /// queue_wait/compute/emit spans into StreamingOptions::tracer.
  PushStatus TryPush(SessionId id, roadnet::SegmentId segment,
                     int64_t max_session_pending,
                     int64_t max_queued_points = 0, uint64_t trace_id = 0);

  /// Marks the trip finished. Its state row is released (and the state
  /// matrix compacted when mostly free) once every queued point has been
  /// scored; queued points are still processed and Poll() keeps working.
  void End(SessionId id);

  /// Runs one batched advance over the queued points — up to
  /// max_batch_rows sessions, FIFO by queue arrival. Returns the number of
  /// points scored.
  int64_t Step();

  /// Steps until no queued point remains.
  void Flush();

  /// Deadline-bounded admission: Step() only if the batch is full or the
  /// oldest queued point has waited at least max_delay_ms. A serving pump
  /// loop calls this; returns the number of points scored (0 = not ready).
  int64_t StepIfReady();

  /// Drains the scores emitted for `id` since the last Poll, in feed
  /// order. A fully-polled ended session is forgotten.
  std::vector<double> Poll(SessionId id);

  /// Poll that also reports whether this call (or an earlier one) forgot
  /// the session — i.e. the batcher no longer tracks `id`. A caller that
  /// keeps its own id→batcher routing table (StreamingService generations)
  /// uses this to drop its entry in the same step.
  std::vector<double> Poll(SessionId id, bool* forgotten);

  /// Live view/control of the deadline-admission knob, for the adaptive
  /// controller in StreamingService. Takes the batcher lock; the new value
  /// applies from the next StepIfReady().
  double max_delay_ms() const;
  void set_max_delay_ms(double ms);

  /// Sessions holding a live state row / allocated rows / queued points —
  /// introspection for tests and ops dashboards.
  int64_t active_rows() const;
  int64_t capacity_rows() const;
  int64_t queued_points() const;
  /// Sessions the batcher still tracks (live, or ended with unpolled
  /// scores) — the session-leak regression tests watch this.
  int64_t tracked_sessions() const;

  /// Cumulative ops counters: batches that scored at least one point, and
  /// total points scored. Step occupancy is points / (steps ·
  /// max_batch_rows).
  struct Counters {
    int64_t steps = 0;
    int64_t points = 0;
  };
  Counters counters() const;

 private:
  /// One queued observation; the enqueue time rides along so deadline
  /// admission and the queue-wait histogram see the point's true age even
  /// after its session is re-queued behind a burst.
  struct PendingPoint {
    roadnet::SegmentId segment = roadnet::kInvalidSegment;
    double enqueued_ms = 0.0;
    uint64_t trace_id = 0;  // sampled trace identity, 0 = untraced
  };

  struct Session {
    int64_t row = -1;  // shared-state row; -1 for kScalingOnly sessions
    roadnet::SegmentId last = roadnet::kInvalidSegment;
    bool has_last = false;
    bool ended = false;
    int table_slot = 0;  // scaling-table slot (kFull)
    int rp_slot = 0;     // RP-VAE slot (kScalingOnly)
    double base = 0.0;   // sd_nll + kl
    double nll = 0.0;
    double scaling = 0.0;
    int64_t emit_skip = 0;  // scores still to compute-but-not-queue (replay)
    bool in_ready = false;
    /// A Step() admitted one of this session's points and has not committed
    /// it yet. While set: the session cannot be admitted again (feed order),
    /// its state row cannot be released, and the entry cannot be forgotten
    /// — the in-flight compute still writes back through it.
    bool in_flight = false;
    std::deque<PendingPoint> pending;
    std::vector<double> scores;
  };

  /// One admitted batch between AdmitLocked and CommitLocked. Everything
  /// the kernel pass reads is snapshotted or pinned here, so the compute
  /// runs with the batcher mutex RELEASED: admitted ids and points, the
  /// transition partition with a local copy of the involved state rows
  /// (the shared matrix may be reallocated or compacted by concurrent
  /// Begin/End while we compute), and a shared_ptr pin on the packed
  /// output weights (a concurrent re-Fit may swap them).
  struct BatchPlan {
    std::vector<SessionId> admitted;
    std::vector<roadnet::SegmentId> points;
    std::vector<uint64_t> trace_ids;  // parallel to admitted (0 = untraced)
    double compute_start_ms = 0.0;    // set around ComputeUnlocked when any
    double compute_dur_ms = 0.0;      // admitted point is traced
    // GRU-transition partition (row k of tr_states is transition k's state).
    std::vector<roadnet::SegmentId> tr_current, tr_next;
    std::vector<size_t> tr_admitted;
    std::vector<float> tr_states;
    std::vector<double> tr_nll;
    std::shared_ptr<const std::vector<float>> wt;
    // kScalingOnly partition, batched per departure slot.
    std::vector<std::vector<roadnet::SegmentId>> slot_segments;
    std::vector<std::vector<size_t>> slot_owners;
    std::vector<int> slot_of;
    std::vector<std::vector<double>> slot_nll;
  };

  double Now() const;
  void ReadyPushLocked(SessionId id, double since);
  double ReadyPopLocked();
  PushStatus PushLocked(SessionId id, roadnet::SegmentId segment,
                        int64_t max_session_pending,
                        int64_t max_queued_points, uint64_t trace_id);
  /// ComputeUnlocked plus the traced-batch compute-span timing — the shared
  /// middle phase of Step/StepIfReady.
  void ComputePhase(BatchPlan* plan) const;
  /// Step phase 1 (under mu_): pop up to max_batch_rows ready sessions,
  /// mark them in flight, and snapshot their compute inputs into `plan`.
  void AdmitLocked(BatchPlan* plan);
  /// Step phase 2 (NO lock held): the fused GRU advance + NLL kernels over
  /// the snapshot. Touches no batcher state.
  void ComputeUnlocked(BatchPlan* plan) const;
  /// Step phase 3 (under mu_): write advanced state rows back (rows are
  /// re-looked-up — compaction may have moved them), emit scores, requeue
  /// or release sessions, clear in-flight marks. Returns points scored.
  int64_t CommitLocked(const BatchPlan& plan);
  int64_t AllocRowLocked();
  void ReleaseRowLocked(Session* session);
  void MaybeForgetLocked(SessionId id);
  void RefreshWeightsLocked();

  const core::CausalTad* model_;
  const core::TgVae* tg_;
  const core::RpVae* rp_;
  core::ScoreVariant variant_;
  double lambda_;
  StreamingOptions options_;
  // TG-VAE output weights transposed ([vocab, hidden]); shared with the
  // model's serving cache so a re-Fit under a live batcher cannot dangle.
  // Re-checked against the model on every BeginSession: when a re-Fit() /
  // Load() has swapped in fresh packed weights, the batcher adopts them
  // and drops the sd_cache_ entries derived from the old ones.
  std::shared_ptr<const std::vector<float>> wt_;

  mutable std::mutex mu_;
  SessionId next_id_ = 0;
  std::unordered_map<SessionId, Session> sessions_;
  std::deque<SessionId> ready_;       // FIFO of sessions with queued points
  std::deque<double> ready_since_;    // oldest pending point's enqueue time
  // Sliding-window minimum of ready_since_ (non-decreasing; front is the
  // min). ready_since_ is NOT monotone — a re-queued burst session carries
  // its oldest pending point's original timestamp to the back — so the
  // deadline check needs the true minimum, not front().
  std::deque<double> ready_min_;
  int64_t queued_points_ = 0;
  int64_t steps_fired_ = 0;
  int64_t points_scored_ = 0;
  std::vector<float> states_;         // [capacity, hidden] row-major
  int64_t capacity_ = 0;
  std::vector<int64_t> free_rows_;
  struct SdContext {
    std::vector<float> h0;
    double base = 0.0;
  };
  std::unordered_map<uint64_t, SdContext> sd_cache_;
};

}  // namespace serve
}  // namespace causaltad

#endif  // CAUSALTAD_SERVE_STREAMING_H_
