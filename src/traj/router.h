#ifndef CAUSALTAD_TRAJ_ROUTER_H_
#define CAUSALTAD_TRAJ_ROUTER_H_

#include <vector>

#include "roadnet/grid_city.h"
#include "roadnet/shortest_path.h"
#include "traj/trajectory.h"
#include "util/random.h"

namespace causaltad {
namespace traj {

/// Route-choice model parameters. The router implements the causal edges
/// C → T and E → T of the paper's Fig. 2(a): the trip must connect the SD
/// pair (C → T), but among feasible routes drivers prefer high-preference
/// segments (E → T), with per-trip random-utility noise producing a
/// realistic diversity of "normal" routes per SD pair.
struct RouterConfig {
  /// Exponent on segment preference in the generalized cost
  /// length / preference^gamma. Higher = stronger road-preference confound.
  double preference_gamma = 1.6;
  /// Lognormal sigma of per-trip, per-segment cost perturbation for typical
  /// (corridor-following) trips.
  double noise_sigma = 0.15;
  /// Real taxi corpora show long-tailed route diversity per SD pair: most
  /// trips follow the corridor, a minority take idiosyncratic routes
  /// (driver knowledge, transient congestion). Each trip is an "explorer"
  /// with this probability and then uses explore_sigma noise instead.
  /// Explorers give the road network thin but broad coverage: most streets
  /// are *seen* in training yet cold, which is the regime the paper's OOD
  /// collapse of likelihood-based baselines lives in.
  double explore_prob = 0.20;
  double explore_sigma = 0.9;
  /// Extra multiplicative cost on arterials during rush-hour slots, making
  /// the environment mildly time-dependent (exercised by DeepTEA).
  double rush_arterial_penalty = 0.35;
};

/// Samples routes from the preference-weighted random-utility model.
class PreferenceRouter {
 public:
  PreferenceRouter(const roadnet::City* city, const RouterConfig& config);

  /// Samples one route from `src` to `dst` departing in `time_slot`.
  /// Returns an empty route if unreachable (cannot happen on a strongly
  /// connected network).
  Route Sample(roadnet::NodeId src, roadnet::NodeId dst, int time_slot,
               util::Rng* rng) const;

  /// The deterministic preference-optimal route (no noise), i.e. the modal
  /// "normal" route for the SD pair.
  Route Best(roadnet::NodeId src, roadnet::NodeId dst, int time_slot) const;

  /// True if `slot` is a rush-hour slot (slots 2,3 and 6,7 of 8 by default:
  /// morning and evening peaks).
  static bool IsRushSlot(int slot);

  const RouterConfig& config() const { return config_; }

 private:
  /// Deterministic per-segment generalized cost for a time slot.
  std::vector<double> BaseCosts(int time_slot) const;

  const roadnet::City* city_;
  RouterConfig config_;
  roadnet::ShortestPathEngine engine_;
  // Cached per-slot base costs (built lazily would need sync; small, so
  // built eagerly for the two regimes: rush / off-peak).
  std::vector<double> offpeak_costs_;
  std::vector<double> rush_costs_;
};

}  // namespace traj
}  // namespace causaltad

#endif  // CAUSALTAD_TRAJ_ROUTER_H_
