#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "net/socket_io.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace causaltad {
namespace net {
namespace {

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  // Best effort: fails harmlessly on AF_UNIX loopback pairs.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Scores per ScoreDelta frame: 64 KiB of payload, far under the 1 MiB
// frame cap, so a session's unpolled backlog of any size streams back as a
// sequence of decodable frames.
constexpr size_t kMaxScoresPerDelta = 8192;

}  // namespace

Server::Server(serve::StreamingService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  CAUSALTAD_CHECK(service != nullptr);
  registry_ =
      options_.registry != nullptr ? options_.registry : obs::Registry::Default();
  connections_accepted_.Bind(registry_, "server_connections_accepted_total");
  connections_active_.Bind(registry_, "server_connections_active");
  connections_reaped_.Bind(registry_, "server_connections_reaped_total");
  frames_received_.Bind(registry_, "server_frames_received_total");
  frames_sent_.Bind(registry_, "server_frames_sent_total");
  bytes_received_.Bind(registry_, "server_bytes_received_total");
  bytes_sent_.Bind(registry_, "server_bytes_sent_total");
  pushes_accepted_.Bind(registry_, "server_pushes_accepted_total");
  duplicate_pushes_.Bind(registry_, "server_duplicate_pushes_total");
  rejected_session_full_.Bind(registry_,
                              "server_rejected_session_full_total");
  rejected_shard_full_.Bind(registry_, "server_rejected_shard_full_total");
  rejected_quota_.Bind(registry_, "server_rejected_quota_total");
  rejected_out_of_order_.Bind(registry_,
                              "server_rejected_out_of_order_total");
  rejected_shutdown_.Bind(registry_, "server_rejected_shutdown_total");
  auth_failures_.Bind(registry_, "server_auth_failures_total");
  protocol_errors_.Bind(registry_, "server_protocol_errors_total");
  heartbeats_.Bind(registry_, "server_heartbeats_total");
  sessions_detached_.Bind(registry_, "server_sessions_detached_total");
  sessions_resumed_.Bind(registry_, "server_sessions_resumed_total");
  sessions_resumed_fresh_.Bind(registry_,
                               "server_sessions_resumed_fresh_total");
  detached_live_.Bind(registry_, "server_sessions_detached_live");
  orphans_live_.Bind(registry_, "server_orphans_live");
  models_staged_.Bind(registry_, "server_models_staged_total");
  models_committed_.Bind(registry_, "server_models_committed_total");
  for (uint8_t t = 1; t <= 14; ++t) {
    dispatch_frame_[t] = registry_->GetHistogram(
        "server_dispatch_ms",
        {{"frame", FrameTypeName(static_cast<FrameType>(t))}});
    dispatch_base_[t] = dispatch_frame_[t]->raw()->TakeSnapshot();
  }
}

Server::~Server() { Stop(); }

double Server::NowMs() const {
  if (options_.now_ms) return options_.now_ms();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string Server::DetachedKey(const std::string& tenant,
                                uint64_t resume_key) {
  return tenant + '/' + std::to_string(resume_key);
}

util::Status Server::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return util::Status::FailedPrecondition("already started");
  if (pipe2(wake_fds_, O_NONBLOCK | O_CLOEXEC) != 0) {
    return util::Status::IoError("pipe2 failed: " +
                                 std::string(std::strerror(errno)));
  }
  if (options_.listen_port >= 0) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
    if (listen_fd_ < 0) {
      return util::Status::IoError("socket failed: " +
                                   std::string(std::strerror(errno)));
    }
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.listen_port));
    if (inet_pton(AF_INET, options_.listen_host.c_str(), &addr.sin_addr) !=
        1) {
      return util::Status::InvalidArgument("bad listen_host " +
                                           options_.listen_host);
    }
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        listen(listen_fd_, 64) != 0) {
      const std::string err = std::strerror(errno);
      close(listen_fd_);
      listen_fd_ = -1;
      return util::Status::IoError("bind/listen failed: " + err);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  started_ = true;
  stop_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  loop_ = std::thread([this] { Loop(); });
  return util::Status::Ok();
}

void Server::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) {
    stop_.store(true, std::memory_order_release);
    const char byte = 1;
    [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
    if (loop_.joinable()) loop_.join();
    // Loop has exited: close everything it owned and end the sessions the
    // dead connections still held, so the service releases their rows.
    for (auto& conn : connections_) {
      if (conn->fd >= 0) CloseConnection(conn.get());
    }
    connections_.clear();
    connections_active_.Set(0);
    // Detached sessions cannot outlive the server: end them so the service
    // releases their rows, then drain like any other orphan.
    for (auto& [key, detached] : detached_) AbandonDetachedLocked(&detached);
    detached_.clear();
    detached_live_.Set(0);
    // Best-effort orphan drain of scores already emitted (no waiting: the
    // service may keep scoring queued points after we return).
    DrainOrphans();
    // A stage still loading finishes into the void (its waiters' acks are
    // moot); the worker must be joined before the server is destroyed.
    if (stage_worker_.joinable()) stage_worker_.join();
    stage_waiters_.clear();
    if (listen_fd_ >= 0) close(listen_fd_);
    listen_fd_ = -1;
    close(wake_fds_[0]);
    close(wake_fds_[1]);
    wake_fds_[0] = wake_fds_[1] = -1;
    started_ = false;
  }
  // ALWAYS reap queued loopback ends — including fds pushed before Start()
  // or after Stop(), which the early-return path used to leak.
  {
    std::lock_guard<std::mutex> pending_lock(pending_mu_);
    for (const int fd : pending_fds_) close(fd);
    pending_fds_.clear();
  }
}

bool Server::Drain(double timeout_ms) {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_) return true;
    draining_.store(true, std::memory_order_release);
    const char byte = 1;
    [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
  }
  util::Stopwatch watch;
  while (true) {
    bool pending_empty;
    {
      std::lock_guard<std::mutex> pending_lock(pending_mu_);
      pending_empty = pending_fds_.empty();
    }
    const bool drained =
        pending_empty &&
        connections_active_.value() == 0 &&
        detached_live_.value() == 0 &&
        orphans_live_.value() == 0;
    if (drained) return true;
    if (timeout_ms > 0.0 && watch.ElapsedMillis() > timeout_ms) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

int Server::AddLoopbackConnection() {
  int fds[2];
  CAUSALTAD_CHECK_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0)
      << "socketpair failed: " << std::strerror(errno);
  SetNonBlocking(fds[0]);
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_fds_.push_back(fds[0]);
  }
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (started_) {
      const char byte = 1;
      [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
    }
  }
  return fds[1];
}

void Server::AdoptPending(double now) {
  std::vector<int> adopted;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    adopted.swap(pending_fds_);
  }
  for (const int fd : adopted) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->last_activity_ms = now;
    if (options_.fault != nullptr) conn->fault = options_.fault->Attach();
    connections_accepted_.Inc();
    connections_active_.Add(1);
    if (draining_.load(std::memory_order_acquire)) {
      SendError(conn.get(), ErrorCode::kShuttingDown, "server is draining");
      conn->closing = true;
    }
    connections_.push_back(std::move(conn));
  }
}

void Server::AcceptTcp(double now) {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;
    SetNoDelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->last_activity_ms = now;
    if (options_.fault != nullptr) conn->fault = options_.fault->Attach();
    connections_.push_back(std::move(conn));
    connections_accepted_.Inc();
    connections_active_.Add(1);
  }
}

void Server::Loop() {
  std::vector<pollfd> fds;
  std::vector<Connection*> polled;
  while (!stop_.load(std::memory_order_acquire)) {
    const double now = NowMs();
    AdoptPending(now);
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && listen_fd_ >= 0) {
      // Stop admitting TCP connections; Stop() sees -1 and skips the close.
      close(listen_fd_);
      listen_fd_ = -1;
    }

    fds.clear();
    polled.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& conn : connections_) {
      if (conn->fd < 0) continue;
      // Idle-peer reaping: a half-open connection (peer gone without FIN,
      // or a wedged producer) stops pinning quota and shard rows. Its
      // resumable sessions detach like any disconnect.
      if (!conn->closing && options_.heartbeat_timeout_ms > 0.0 &&
          now - conn->last_activity_ms > options_.heartbeat_timeout_ms) {
        connections_reaped_.Inc();
        CloseConnection(conn.get());
        continue;
      }
      // Draining: once a connection owns no sessions it is told the server
      // is going away and flushed out.
      if (draining && !conn->closing && conn->sessions.empty()) {
        SendError(conn.get(), ErrorCode::kShuttingDown,
                  "server is draining");
        conn->closing = true;
        if (conn->fd < 0) continue;
      }
      short events = conn->closing ? 0 : POLLIN;
      if (conn->woff < conn->wbuf.size()) events |= POLLOUT;
      if (events == 0) {  // closing and fully flushed
        CloseConnection(conn.get());
        continue;
      }
      fds.push_back({conn->fd, events, 0});
      polled.push_back(conn.get());
    }
    // With orphans or detached sessions pending (or a drain in flight),
    // tick fast enough to move their scores as the service emits them;
    // otherwise just often enough to notice Stop() races lost to the wake
    // pipe.
    const int timeout_ms =
        (orphans_.empty() && detached_.empty() && !draining) ? 50 : 2;
    const int ready = poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;
    if (ready >= 0) {
      size_t base = 1;
      if (fds[0].revents & POLLIN) {
        char buf[64];
        while (read(wake_fds_[0], buf, sizeof(buf)) > 0) {
        }
      }
      if (listen_fd_ >= 0) {
        if (fds[base].revents & POLLIN) AcceptTcp(now);
        ++base;
      }
      for (size_t i = 0; i < polled.size(); ++i) {
        Connection* conn = polled[i];
        const short revents = fds[base + i].revents;
        if (revents & POLLOUT) {
          if (!FlushWrites(conn)) {
            CloseConnection(conn);
            continue;
          }
        }
        if (revents & POLLIN) ReadConnection(conn, NowMs());
        if ((revents & (POLLERR | POLLHUP)) && conn->fd >= 0 &&
            conn->woff >= conn->wbuf.size()) {
          CloseConnection(conn);
        }
      }
    }
    PumpStaging();
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& c) {
                         return c->fd < 0;
                       }),
        connections_.end());
    DrainOrphans();
    DrainDetached(NowMs());
  }
}

void Server::ReadConnection(Connection* conn, double now) {
  uint8_t buf[64 * 1024];
  while (conn->fd >= 0 && !conn->closing) {
    const IoResult r = RecvSome(conn->fd, buf, sizeof(buf),
                                conn->fault.get());
    if (r.n > 0) {
      conn->last_activity_ms = now;
      bytes_received_.Inc(r.n);
      conn->decoder.Feed(buf, static_cast<size_t>(r.n));
      Frame frame;
      while (conn->fd >= 0 && !conn->closing && conn->decoder.Next(&frame)) {
        frames_received_.Inc();
        const uint8_t kind = static_cast<uint8_t>(frame.type);
        util::Stopwatch dispatch_watch;
        HandleFrame(conn, frame);
        if (kind >= 1 && kind <= 14) {
          dispatch_frame_[kind]->Observe(dispatch_watch.ElapsedMillis());
        }
      }
      if (!conn->decoder.status().ok() && conn->fd >= 0 && !conn->closing) {
        protocol_errors_.Inc();
        SendError(conn, ErrorCode::kProtocol,
                  conn->decoder.status().message());
        conn->closing = true;
      }
      if (static_cast<ssize_t>(sizeof(buf)) > r.n) break;  // drained
    } else if (r.peer_closed) {
      CloseConnection(conn);
      break;
    } else if (r.would_block) {
      break;
    } else {
      CloseConnection(conn);  // hard error (incl. injected kill)
      break;
    }
  }
}

void Server::HandleFrame(Connection* conn, const Frame& frame) {
  if (!conn->authed && frame.type != FrameType::kHello) {
    auth_failures_.Inc();
    SendError(conn, ErrorCode::kAuthRequired, "first frame must be Hello");
    conn->closing = true;
    return;
  }
  switch (frame.type) {
    case FrameType::kHello:
      HandleHello(conn, frame);
      return;
    case FrameType::kBegin:
      HandleBegin(conn, frame);
      return;
    case FrameType::kPush:
      HandlePush(conn, frame);
      return;
    case FrameType::kEnd:
      HandleEnd(conn, frame);
      return;
    case FrameType::kPoll:
      HandlePoll(conn, frame);
      return;
    case FrameType::kResume:
      HandleResume(conn, frame);
      return;
    case FrameType::kHeartbeat:
      HandleHeartbeat(conn, frame);
      return;
    case FrameType::kAdmin:
      HandleAdmin(conn, frame);
      return;
    case FrameType::kStats:
      HandleStats(conn, frame);
      return;
    case FrameType::kScoreDelta:
    case FrameType::kPushReject:
    case FrameType::kResumeAck:
    case FrameType::kError:
    case FrameType::kAdminAck:
      break;  // server-to-client frames are not valid requests
  }
  protocol_errors_.Inc();
  SendError(conn, ErrorCode::kProtocol, "client sent a server-only frame");
  conn->closing = true;
}

void Server::HandleHello(Connection* conn, const Frame& frame) {
  if (conn->authed) {
    // A byte-identical duplicate (fault injection redelivers whole frames)
    // is an idempotent re-auth; a DIFFERENT tenant mid-connection is not.
    if (frame.tenant == conn->tenant) return;
    protocol_errors_.Inc();
    SendError(conn, ErrorCode::kProtocol, "Hello changed tenant");
    conn->closing = true;
    return;
  }
  if (!options_.tenant_tokens.empty()) {
    const auto it = options_.tenant_tokens.find(frame.tenant);
    if (it == options_.tenant_tokens.end() ||
        it->second != frame.auth_token) {
      auth_failures_.Inc();
      SendError(conn, ErrorCode::kAuthFailed,
                "unknown tenant or bad token for '" + frame.tenant + "'");
      conn->closing = true;
      return;
    }
  }
  conn->authed = true;
  conn->tenant = frame.tenant;
}

void Server::HandleBegin(Connection* conn, const Frame& frame) {
  if (draining_.load(std::memory_order_acquire)) {
    SendError(conn, ErrorCode::kShuttingDown, "server is draining");
    conn->closing = true;
    return;
  }
  const auto existing = conn->sessions.find(frame.session);
  if (existing != conn->sessions.end()) {
    // A redelivered duplicate of the same resumable Begin is idempotent;
    // reusing a live id for a different session is a protocol error.
    if (frame.resume_key != 0 &&
        existing->second.resume_key == frame.resume_key) {
      return;
    }
    protocol_errors_.Inc();
    SendError(conn, ErrorCode::kDuplicateSession,
              "session " + std::to_string(frame.session) + " already open");
    conn->closing = true;
    return;
  }
  if (options_.network != nullptr) {
    const int64_t n = options_.network->num_segments();
    if (frame.source < 0 || frame.source >= n || frame.destination < 0 ||
        frame.destination >= n) {
      protocol_errors_.Inc();
      SendError(conn, ErrorCode::kInvalidSegment,
                "Begin endpoints out of range");
      conn->closing = true;
      return;
    }
  }
  SessionState state;
  state.inner = service_->BeginSession(frame.source, frame.destination,
                                       frame.time_slot);
  state.resume_key = frame.resume_key;
  conn->sessions.emplace(frame.session, state);
}

int64_t* Server::TenantPending(const std::string& tenant) {
  return &tenant_pending_[tenant];
}

void Server::HandlePush(Connection* conn, const Frame& frame) {
  const auto it = conn->sessions.find(frame.session);
  if (it == conn->sessions.end()) {
    protocol_errors_.Inc();
    SendError(conn, ErrorCode::kUnknownSession,
              "Push for unknown session " + std::to_string(frame.session));
    conn->closing = true;
    return;
  }
  SessionState& state = it->second;
  // A seq the session has already accepted is a resume replay crossing an
  // ack the client never saw: idempotently ignore it — the accepted stream
  // must have no duplicates.
  if (frame.seq < state.expected_seq) {
    duplicate_pushes_.Inc();
    return;
  }
  if (state.ended) {
    protocol_errors_.Inc();
    SendError(conn, ErrorCode::kProtocol, "Push after End");
    conn->closing = true;
    return;
  }
  // In-order admission: once a push is rejected, every later in-flight push
  // of the session bounces as out-of-order until the client resends from
  // the gap — the session's accepted stream can never skip a point.
  if (frame.seq != state.expected_seq) {
    rejected_out_of_order_.Inc();
    SendReject(conn, frame, RejectReason::kOutOfOrder);
    return;
  }
  if (options_.network != nullptr) {
    const int64_t n = options_.network->num_segments();
    const bool in_range = frame.segment >= 0 && frame.segment < n;
    if (!in_range || (state.has_last &&
                      !options_.network->IsSuccessor(state.last,
                                                     frame.segment))) {
      protocol_errors_.Inc();
      SendError(conn, ErrorCode::kInvalidSegment,
                in_range ? "segment is not a legal successor"
                         : "segment id out of range");
      conn->closing = true;
      return;
    }
  }
  // Tenant shed quota, checked before the push reaches a shard: points the
  // tenant has pushed but not yet drained via Poll count against it.
  // Emit-skipped replay pushes (seq < skip) never produce a deliverable
  // score, so they are quota-exempt.
  int64_t* pending = TenantPending(conn->tenant);
  const bool deliverable =
      static_cast<int64_t>(frame.seq) >= state.skip;
  if (deliverable && options_.tenant_max_pending > 0 &&
      *pending >= options_.tenant_max_pending) {
    rejected_quota_.Inc();
    SendReject(conn, frame, RejectReason::kQuota);
    return;
  }
  // Traced push: time the service hand-off as the backend's dispatch leg of
  // the span chain (the shard batcher records queue_wait/compute/emit).
  const bool traced = frame.trace_id != 0 && options_.tracer != nullptr;
  const double trace_t0 = traced ? obs::TraceNowMs() : 0.0;
  switch (service_->Push(state.inner, frame.segment, frame.trace_id)) {
    case serve::PushStatus::kAccepted:
      ++state.expected_seq;
      if (deliverable) ++*pending;
      state.last = frame.segment;
      state.has_last = true;
      pushes_accepted_.Inc();
      if (traced) {
        options_.tracer->Record(frame.trace_id, "server_dispatch",
                                options_.trace_where, trace_t0,
                                obs::TraceNowMs() - trace_t0);
      }
      return;  // accepted pushes are not answered — scores are the ack
    case serve::PushStatus::kSessionFull:
      rejected_session_full_.Inc();
      SendReject(conn, frame, RejectReason::kSessionFull);
      return;
    case serve::PushStatus::kShardFull:
      rejected_shard_full_.Inc();
      SendReject(conn, frame, RejectReason::kShardFull);
      return;
    case serve::PushStatus::kShutdown:
      rejected_shutdown_.Inc();
      SendReject(conn, frame, RejectReason::kShutdown);
      return;
  }
}

void Server::HandleEnd(Connection* conn, const Frame& frame) {
  const auto it = conn->sessions.find(frame.session);
  if (it == conn->sessions.end()) {
    protocol_errors_.Inc();
    SendError(conn, ErrorCode::kUnknownSession,
              "End for unknown session " + std::to_string(frame.session));
    conn->closing = true;
    return;
  }
  if (it->second.ended) {
    // A resumed session may replay its End (the client cannot know whether
    // the original landed) — idempotent. A duplicate End on a session that
    // was never resumable is still a protocol error.
    if (it->second.resume_key != 0) return;
    protocol_errors_.Inc();
    SendError(conn, ErrorCode::kProtocol, "duplicate End");
    conn->closing = true;
    return;
  }
  it->second.ended = true;
  service_->End(it->second.inner);
  MaybeForgetSession(conn, frame.session);
}

void Server::SendScoreChunks(Connection* conn, uint64_t session_id,
                             SessionState* state,
                             const std::vector<double>& scores, int64_t base,
                             uint64_t token) {
  // A large backlog is split across frames so no delta ever exceeds
  // kMaxFramePayload; only the LAST chunk echoes the token, so the
  // client's barrier still means "everything before this has arrived".
  // Every chunk is offset-stamped so the client can detect gaps and drop
  // redelivered duplicates after a resume.
  size_t sent = 0;
  do {
    Frame delta;
    delta.type = FrameType::kScoreDelta;
    delta.session = session_id;
    delta.offset = static_cast<uint64_t>(base) + sent;
    const size_t chunk = std::min(scores.size() - sent, kMaxScoresPerDelta);
    delta.scores.assign(scores.begin() + static_cast<int64_t>(sent),
                        scores.begin() + static_cast<int64_t>(sent + chunk));
    sent += chunk;
    if (sent == scores.size()) delta.token = token;
    SendFrame(conn, delta);
    // SendFrame may have closed the connection (broken pipe / slow
    // consumer), invalidating `state` and the session map — stop touching
    // both.
    if (conn->fd < 0) return;
  } while (sent < scores.size());
  (void)state;
}

void Server::HandlePoll(Connection* conn, const Frame& frame) {
  std::vector<double> scores;
  int64_t base = 0;
  const auto it = conn->sessions.find(frame.session);
  const bool known = it != conn->sessions.end();
  if (known) {
    SessionState& state = it->second;
    scores = service_->Poll(state.inner);
    const int64_t n = static_cast<int64_t>(scores.size());
    base = state.delivered;
    state.delivered += n;
    *TenantPending(conn->tenant) -= n;
    if (state.resume_key != 0) {
      // Retain for post-reconnect redelivery until the client acks them
      // (frame.offset = its delivered high-water).
      state.history.insert(state.history.end(), scores.begin(),
                           scores.end());
      while (!state.history.empty() &&
             state.history_base < static_cast<int64_t>(frame.offset)) {
        state.history.pop_front();
        ++state.history_base;
      }
      if (static_cast<int64_t>(state.history.size()) >
          options_.max_resume_history) {
        // The client is not acking: cap memory by revoking resumability
        // instead of growing without bound.
        state.resume_key = 0;
        state.history.clear();
      }
    }
  }
  // Unknown sessions get an empty delta: a Poll is ALWAYS answered, so
  // clients can use it as an ordering barrier (e.g. right after Hello).
  SendScoreChunks(conn, frame.session, known ? &it->second : nullptr, scores,
                  base, frame.token);
  if (conn->fd < 0) return;
  if (known) MaybeForgetSession(conn, frame.session);
}

void Server::HandleResume(Connection* conn, const Frame& frame) {
  if (draining_.load(std::memory_order_acquire)) {
    SendError(conn, ErrorCode::kShuttingDown, "server is draining");
    conn->closing = true;
    return;
  }
  if (frame.resume_key == 0) {
    protocol_errors_.Inc();
    SendError(conn, ErrorCode::kProtocol, "Resume without a resume key");
    conn->closing = true;
    return;
  }
  const auto open = conn->sessions.find(frame.session);
  if (open != conn->sessions.end()) {
    if (open->second.resume_key == frame.resume_key) {
      // Redelivered duplicate of a Resume already honored: re-ack with the
      // current accepted high-water (the client ignores acks it is not
      // waiting for, so this is harmless either way).
      Frame ack;
      ack.type = FrameType::kResumeAck;
      ack.session = frame.session;
      ack.offset = open->second.expected_seq;
      SendFrame(conn, ack);
      return;
    }
    protocol_errors_.Inc();
    SendError(conn, ErrorCode::kDuplicateSession,
              "Resume for a session id already open on this connection");
    conn->closing = true;
    return;
  }
  const int64_t have = static_cast<int64_t>(frame.offset);
  const auto det = detached_.find(DetachedKey(conn->tenant,
                                              frame.resume_key));
  if (det != detached_.end() && have >= det->second.state.history_base) {
    // Re-adopt: the interrupted session continues where it left off. The
    // ack tells the client to replay from the accepted high-water; the
    // unacked history tail is redelivered first (offset-stamped, so a
    // client that actually received some of it drops the duplicates).
    SessionState state = std::move(det->second.state);
    detached_.erase(det);
    detached_live_.Set(static_cast<int64_t>(detached_.size()));
    sessions_resumed_.Inc();
    while (!state.history.empty() && state.history_base < have) {
      state.history.pop_front();
      ++state.history_base;
    }
    Frame ack;
    ack.type = FrameType::kResumeAck;
    ack.session = frame.session;
    ack.offset = state.expected_seq;
    SendFrame(conn, ack);
    if (conn->fd < 0) return;
    if (!state.history.empty()) {
      const std::vector<double> redeliver(state.history.begin(),
                                          state.history.end());
      SendScoreChunks(conn, frame.session, &state, redeliver,
                      state.history_base, /*token=*/0);
      if (conn->fd < 0) return;
    }
    conn->sessions.emplace(frame.session, std::move(state));
    MaybeForgetSession(conn, frame.session);
    return;
  }
  if (det != detached_.end()) {
    // The client's high-water predates the retained history (cannot happen
    // with a well-behaved client, but a corrupt peer must not wedge the
    // parked state): abandon the old incarnation and rebuild fresh below.
    AbandonDetachedLocked(&det->second);
    detached_.erase(det);
    detached_live_.Set(static_cast<int64_t>(detached_.size()));
  }
  // Fresh rebuild: the server lost the session (restart, linger expiry).
  // The client replays its full journaled prefix from seq 0; the first
  // `have` scores are computed but not re-delivered (emit-skip), so
  // delivery resumes exactly at the client's high-water.
  if (options_.network != nullptr) {
    const int64_t n = options_.network->num_segments();
    if (frame.source < 0 || frame.source >= n || frame.destination < 0 ||
        frame.destination >= n) {
      protocol_errors_.Inc();
      SendError(conn, ErrorCode::kInvalidSegment,
                "Resume endpoints out of range");
      conn->closing = true;
      return;
    }
  }
  SessionState state;
  state.inner = service_->BeginSessionAt(frame.source, frame.destination,
                                         frame.time_slot, have);
  state.resume_key = frame.resume_key;
  state.skip = have;
  state.delivered = have;
  state.history_base = have;
  conn->sessions.emplace(frame.session, state);
  sessions_resumed_fresh_.Inc();
  Frame ack;
  ack.type = FrameType::kResumeAck;
  ack.session = frame.session;
  ack.offset = 0;  // replay everything
  SendFrame(conn, ack);
}

void Server::HandleHeartbeat(Connection* conn, const Frame& frame) {
  if (frame.seq != 1) return;  // not a ping: ignore stray pongs
  heartbeats_.Inc();
  Frame pong;
  pong.type = FrameType::kHeartbeat;
  pong.token = frame.token;
  pong.seq = 0;
  SendFrame(conn, pong);
}

void Server::SendAdminAck(Connection* conn, uint64_t token, AdminStatus status,
                          const std::string& message) {
  Frame ack;
  ack.type = FrameType::kAdminAck;
  ack.token = token;
  ack.seq = static_cast<uint64_t>(status);
  ack.message = message;
  last_admin_ack_ = ack;
  has_last_admin_ack_ = true;
  SendFrame(conn, ack);
}

void Server::HandleAdmin(Connection* conn, const Frame& frame) {
  // Authorization: a configured admin_tenant gates the surface; without
  // one, only an OPEN server (no tenant tokens) accepts admin commands.
  const bool authorized = options_.admin_tenant.empty()
                              ? options_.tenant_tokens.empty()
                              : conn->tenant == options_.admin_tenant;
  if (!authorized) {
    auth_failures_.Inc();
    SendAdminAck(conn, frame.token, AdminStatus::kError,
                 "admin not authorized for tenant '" + conn->tenant + "'");
    return;
  }
  // Idempotent replay: a resent Admin (barrier resend, fault redelivery)
  // whose token matches the last ack re-receives that ack verbatim — a
  // duplicate commit must not re-run and mis-report "nothing staged".
  if (has_last_admin_ack_ && frame.token == last_admin_ack_.token) {
    SendFrame(conn, last_admin_ack_);
    return;
  }
  const std::string& command = frame.message;
  if (command.rfind("stage:", 0) == 0) {
    const std::string tag = command.substr(6);
    if (!options_.model_resolver) {
      SendAdminAck(conn, frame.token, AdminStatus::kError,
                   "no model resolver configured");
      return;
    }
    const int state = stage_state_.load(std::memory_order_acquire);
    if (state == kStageLoading) {
      if (tag == stage_tag_) {
        // Same tag already loading (or this frame was resent while we
        // load): join the waiters for the deferred ack.
        for (const auto& [waiter, token] : stage_waiters_) {
          if (waiter == conn && token == frame.token) return;
        }
        stage_waiters_.emplace_back(conn, frame.token);
        return;
      }
      SendAdminAck(conn, frame.token, AdminStatus::kBusy,
                   "stage '" + stage_tag_ + "' still loading");
      return;
    }
    if (state == kStageReady && tag == stage_tag_) {
      // Re-staging resident weights is idempotent.
      SendAdminAck(conn, frame.token, AdminStatus::kOk, tag);
      return;
    }
    if (stage_worker_.joinable()) stage_worker_.join();
    stage_tag_ = tag;
    staged_model_ = nullptr;
    stage_error_.clear();
    stage_waiters_.emplace_back(conn, frame.token);
    stage_state_.store(kStageLoading, std::memory_order_release);
    stage_worker_ = std::thread([this, tag] {
      const core::CausalTad* model = options_.model_resolver(tag);
      if (model != nullptr) {
        staged_model_ = model;
        models_staged_.Inc();
        stage_state_.store(kStageReady, std::memory_order_release);
      } else {
        stage_error_ = "stage '" + tag + "' failed to load";
        stage_state_.store(kStageFailed, std::memory_order_release);
      }
    });
    return;  // ack deferred: PumpStaging answers when the load settles
  }
  if (command == "commit") {
    switch (stage_state_.load(std::memory_order_acquire)) {
      case kStageLoading:
        SendAdminAck(conn, frame.token, AdminStatus::kBusy,
                     "stage '" + stage_tag_ + "' still loading");
        return;
      case kStageReady: {
        if (stage_worker_.joinable()) stage_worker_.join();
        if (!service_->SwapModel(staged_model_)) {
          SendAdminAck(conn, frame.token, AdminStatus::kError,
                       "service has shut down");
          return;
        }
        models_committed_.Inc();
        stage_state_.store(kStageIdle, std::memory_order_release);
        SendAdminAck(conn, frame.token, AdminStatus::kOk, stage_tag_);
        return;
      }
      case kStageFailed:
        SendAdminAck(conn, frame.token, AdminStatus::kError, stage_error_);
        return;
      default:
        SendAdminAck(conn, frame.token, AdminStatus::kError,
                     "nothing staged");
        return;
    }
  }
  SendAdminAck(conn, frame.token, AdminStatus::kError,
               "unknown admin command: " + command);
}

void Server::HandleStats(Connection* conn, const Frame& frame) {
  // Same authorization gate as Admin: the exposition names tenants and
  // internals, so it is an operator surface, not a client one.
  const bool authorized = options_.admin_tenant.empty()
                              ? options_.tenant_tokens.empty()
                              : conn->tenant == options_.admin_tenant;
  if (!authorized) {
    auth_failures_.Inc();
    Frame nack;
    nack.type = FrameType::kAdminAck;
    nack.token = frame.token;
    nack.seq = static_cast<uint64_t>(AdminStatus::kError);
    nack.message = "stats not authorized for tenant '" + conn->tenant + "'";
    SendFrame(conn, nack);
    return;
  }
  // Answered directly (NOT via SendAdminAck): a scrape is idempotent and
  // must not disturb the Admin replay cache — a duplicate commit arriving
  // after a scrape still has to re-receive its cached ack, not re-run.
  Frame ack;
  ack.type = FrameType::kAdminAck;
  ack.token = frame.token;
  ack.seq = static_cast<uint64_t>(AdminStatus::kOk);
  ack.message = registry_->ExpositionText();
  SendFrame(conn, ack);
}

void Server::PumpStaging() {
  if (stage_waiters_.empty()) return;
  const int state = stage_state_.load(std::memory_order_acquire);
  if (state == kStageLoading) return;  // still loading: acks stay deferred
  if (stage_worker_.joinable()) stage_worker_.join();
  // Swap out first: SendAdminAck can close a connection, which purges
  // stage_waiters_ via CloseConnection — do not iterate the live vector.
  std::vector<std::pair<Connection*, uint64_t>> waiters;
  waiters.swap(stage_waiters_);
  for (const auto& [conn, token] : waiters) {
    if (conn->fd < 0) continue;
    if (state == kStageReady) {
      SendAdminAck(conn, token, AdminStatus::kOk, stage_tag_);
    } else {
      SendAdminAck(conn, token, AdminStatus::kError, stage_error_);
    }
  }
}

void Server::MaybeForgetSession(Connection* conn, uint64_t id) {
  const auto it = conn->sessions.find(id);
  if (it == conn->sessions.end()) return;
  if (it->second.ended && it->second.Outstanding() == 0) {
    conn->sessions.erase(it);
  }
}

void Server::SendFrame(Connection* conn, const Frame& frame) {
  if (conn->fd < 0) return;
  EncodeFrame(frame, &conn->wbuf);
  frames_sent_.Inc();
  if (!FlushWrites(conn)) {
    CloseConnection(conn);
    return;
  }
  if (conn->wbuf.size() - conn->woff > options_.max_connection_backlog) {
    // Slow consumer: it is not reading its deltas; cut it loose instead of
    // buffering without bound.
    CloseConnection(conn);
  }
}

void Server::SendError(Connection* conn, ErrorCode code,
                       const std::string& message) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.code = code;
  frame.message = message;
  SendFrame(conn, frame);
}

void Server::SendReject(Connection* conn, const Frame& push,
                        RejectReason reason) {
  Frame frame;
  frame.type = FrameType::kPushReject;
  frame.session = push.session;
  frame.seq = push.seq;
  frame.wire_seq = push.wire_seq;
  frame.reason = reason;
  SendFrame(conn, frame);
}

bool Server::FlushWrites(Connection* conn) {
  while (conn->woff < conn->wbuf.size()) {
    const IoResult r =
        SendSome(conn->fd, conn->wbuf.data() + conn->woff,
                 conn->wbuf.size() - conn->woff, conn->fault.get());
    if (!r.ok()) return false;  // broken pipe etc. (incl. injected kill)
    if (r.would_block || r.n == 0) break;
    conn->woff += static_cast<size_t>(r.n);
    bytes_sent_.Inc(r.n);
  }
  if (conn->woff == conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->woff = 0;
  } else if (conn->woff > (1u << 20)) {
    conn->wbuf.erase(conn->wbuf.begin(),
                     conn->wbuf.begin() + static_cast<int64_t>(conn->woff));
    conn->woff = 0;
  }
  return true;
}

void Server::CloseConnection(Connection* conn) {
  if (conn->fd < 0) return;
  close(conn->fd);
  conn->fd = -1;
  connections_active_.Add(-1);
  // Forget any stage ack owed to this connection — the Connection object
  // is reclaimed by the loop and the waiter list must never dangle.
  stage_waiters_.erase(
      std::remove_if(stage_waiters_.begin(), stage_waiters_.end(),
                     [conn](const std::pair<Connection*, uint64_t>& w) {
                       return w.first == conn;
                     }),
      stage_waiters_.end());
  const bool draining = draining_.load(std::memory_order_acquire);
  const double now = NowMs();
  for (auto& [id, state] : conn->sessions) {
    if (state.resume_key != 0 && !draining) {
      // Park for re-adoption: the service session stays live, its scores
      // accrue to the retained history via DrainDetached, and the tenant's
      // quota drains as those scores surface.
      const std::string key = DetachedKey(conn->tenant, state.resume_key);
      const auto stale = detached_.find(key);
      if (stale != detached_.end()) {
        // A previous incarnation with the same key was never resumed:
        // abandon it rather than leak its service session.
        AbandonDetachedLocked(&stale->second);
        detached_.erase(stale);
      }
      sessions_detached_.Inc();
      detached_.emplace(key,
                        Detached{std::move(state), conn->tenant, now});
      continue;
    }
    // Not resumable (or draining): end it and let the orphan drain give
    // the quota back as the remaining scores surface.
    if (!state.ended) service_->End(state.inner);
    if (state.Outstanding() > 0 || !state.ended) {
      orphans_.push_back({state.inner, conn->tenant, state.Outstanding()});
    }
  }
  conn->sessions.clear();
  detached_live_.Set(static_cast<int64_t>(detached_.size()));
  orphans_live_.Set(static_cast<int64_t>(orphans_.size()));
}

void Server::DrainOrphans() {
  for (size_t i = 0; i < orphans_.size();) {
    Orphan& orphan = orphans_[i];
    const std::vector<double> scores = service_->Poll(orphan.inner);
    const int64_t n = static_cast<int64_t>(scores.size());
    orphan.remaining -= n;
    *TenantPending(orphan.tenant) -= n;
    if (orphan.remaining <= 0) {
      orphans_[i] = orphans_.back();
      orphans_.pop_back();
    } else {
      ++i;
    }
  }
  orphans_live_.Set(static_cast<int64_t>(orphans_.size()));
}

void Server::AbandonDetachedLocked(Detached* detached) {
  SessionState& state = detached->state;
  if (!state.ended) {
    service_->End(state.inner);
    state.ended = true;
  }
  if (state.Outstanding() > 0) {
    orphans_.push_back({state.inner, detached->tenant, state.Outstanding()});
  }
  state.history.clear();
}

void Server::DrainDetached(double now) {
  const bool draining = draining_.load(std::memory_order_acquire);
  for (auto it = detached_.begin(); it != detached_.end();) {
    Detached& detached = it->second;
    SessionState& state = detached.state;
    // Keep collecting the scores the service emits for the parked session;
    // they are what a reconnecting client is owed.
    const std::vector<double> scores = service_->Poll(state.inner);
    const int64_t n = static_cast<int64_t>(scores.size());
    if (n > 0) {
      state.delivered += n;
      state.history.insert(state.history.end(), scores.begin(),
                           scores.end());
      *TenantPending(detached.tenant) -= n;
    }
    const bool history_overflow =
        static_cast<int64_t>(state.history.size()) >
        options_.max_resume_history;
    const bool expired =
        options_.detached_linger_ms > 0.0 &&
        now - detached.detached_at_ms > options_.detached_linger_ms;
    if (draining || history_overflow || expired) {
      AbandonDetachedLocked(&detached);
      it = detached_.erase(it);
    } else {
      ++it;
    }
  }
  detached_live_.Set(static_cast<int64_t>(detached_.size()));
  orphans_live_.Set(static_cast<int64_t>(orphans_.size()));
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.connections_accepted =
      connections_accepted_.value();
  stats.connections_active =
      connections_active_.value();
  stats.connections_reaped =
      connections_reaped_.value();
  stats.frames_received = frames_received_.value();
  stats.frames_sent = frames_sent_.value();
  stats.bytes_received = bytes_received_.value();
  stats.bytes_sent = bytes_sent_.value();
  stats.pushes_accepted = pushes_accepted_.value();
  stats.duplicate_pushes =
      duplicate_pushes_.value();
  stats.rejected_session_full =
      rejected_session_full_.value();
  stats.rejected_shard_full =
      rejected_shard_full_.value();
  stats.rejected_quota = rejected_quota_.value();
  stats.rejected_out_of_order =
      rejected_out_of_order_.value();
  stats.rejected_shutdown =
      rejected_shutdown_.value();
  stats.auth_failures = auth_failures_.value();
  stats.protocol_errors = protocol_errors_.value();
  stats.heartbeats = heartbeats_.value();
  stats.sessions_detached =
      sessions_detached_.value();
  stats.sessions_resumed = sessions_resumed_.value();
  stats.sessions_resumed_fresh =
      sessions_resumed_fresh_.value();
  stats.sessions_detached_live =
      detached_live_.value();
  stats.models_staged = models_staged_.value();
  stats.models_committed = models_committed_.value();
  // Dispatch latency across every frame type, windowed to this instance via
  // the construction-time baselines (the registry series are cumulative).
  const util::LatencyHistogram* hists[15];
  util::LatencyHistogram::Snapshot bases[15];
  int n = 0;
  int64_t count = 0;
  double sum_ms = 0.0;
  for (uint8_t t = 1; t <= 14; ++t) {
    hists[n] = dispatch_frame_[t]->raw();
    bases[n] = dispatch_base_[t];
    const int64_t c = hists[n]->TotalCount();
    count += c;
    sum_ms += hists[n]->MeanMs() * static_cast<double>(c);
    ++n;
  }
  if (count > 0) stats.dispatch_mean_ms = sum_ms / static_cast<double>(count);
  stats.dispatch_p50_ms =
      util::LatencyHistogram::MergedPercentileSince(hists, bases, n, 50.0);
  stats.dispatch_p95_ms =
      util::LatencyHistogram::MergedPercentileSince(hists, bases, n, 95.0);
  stats.dispatch_p99_ms =
      util::LatencyHistogram::MergedPercentileSince(hists, bases, n, 99.0);
  return stats;
}

}  // namespace net
}  // namespace causaltad
