#ifndef CAUSALTAD_ROADNET_SHORTEST_PATH_H_
#define CAUSALTAD_ROADNET_SHORTEST_PATH_H_

#include <optional>
#include <span>
#include <vector>

#include "roadnet/road_network.h"

namespace causaltad {
namespace roadnet {

/// A shortest-path answer: the segment sequence and its total cost.
struct RouteResult {
  bool found = false;
  double cost = 0.0;
  std::vector<SegmentId> segments;
};

/// Dijkstra over a road network with per-segment costs and an optional
/// blocked-segment overlay.
///
/// Two query shapes are provided:
///  * NodeToNode       — classic node-based route planning.
///  * SegmentToSegment — path in the *segment graph* (states are segments,
///    transitions follow RoadNetwork::Successors). This is what the paper's
///    Detour generator needs: reroute from t_i to t_j after temporarily
///    deleting t_k from the network (§VI-A2).
///
/// Costs: if `costs` is empty, segment lengths are used; otherwise
/// costs.size() must equal num_segments(). Blocked: optional bitmap of size
/// num_segments(); blocked segments are never traversed.
class ShortestPathEngine {
 public:
  explicit ShortestPathEngine(const RoadNetwork* network);

  RouteResult NodeToNode(NodeId src, NodeId dst,
                         std::span<const double> costs = {},
                         const std::vector<uint8_t>* blocked = nullptr) const;

  /// Shortest segment path starting at `src_seg` (whose own cost is not
  /// counted — it has already been traversed) and ending at `dst_seg`.
  RouteResult SegmentToSegment(SegmentId src_seg, SegmentId dst_seg,
                               std::span<const double> costs = {},
                               const std::vector<uint8_t>* blocked =
                                   nullptr) const;

  /// Hop count (number of segments) of the length-optimal node path, or -1
  /// if unreachable. Used by trip generation to enforce minimum trip length.
  int64_t HopDistance(NodeId src, NodeId dst) const;

  /// A full single-source search tree in the segment graph.
  struct SegmentSearchTree {
    SegmentId source = kInvalidSegment;
    std::vector<double> dist;      // +inf where unreachable
    std::vector<SegmentId> prev;   // kInvalidSegment at the source/unreached
  };

  /// Dijkstra from `src_seg` to every segment (cost of src_seg itself not
  /// counted). `max_cost` (if > 0) prunes the search beyond that radius.
  SegmentSearchTree SegmentSearch(SegmentId src_seg,
                                  std::span<const double> costs = {},
                                  const std::vector<uint8_t>* blocked = nullptr,
                                  double max_cost = -1.0) const;

  /// Reconstructs the path source..dst from a search tree; empty when dst is
  /// unreachable.
  static std::vector<SegmentId> ReconstructPath(const SegmentSearchTree& tree,
                                                SegmentId dst);

 private:
  const RoadNetwork* network_;
};

}  // namespace roadnet
}  // namespace causaltad

#endif  // CAUSALTAD_ROADNET_SHORTEST_PATH_H_
