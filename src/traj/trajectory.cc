#include "traj/trajectory.h"

#include <algorithm>
#include <unordered_set>

namespace causaltad {
namespace traj {

bool Route::IsValid(const roadnet::RoadNetwork& network) const {
  if (segments.empty()) return false;
  for (const roadnet::SegmentId s : segments) {
    if (s < 0 || s >= network.num_segments()) return false;
  }
  for (size_t i = 1; i < segments.size(); ++i) {
    if (!network.IsSuccessor(segments[i - 1], segments[i])) return false;
  }
  return true;
}

double Route::LengthMeters(const roadnet::RoadNetwork& network) const {
  double total = 0.0;
  for (const roadnet::SegmentId s : segments) {
    total += network.segment(s).length_m;
  }
  return total;
}

double RouteJaccard(const Route& a, const Route& b) {
  std::unordered_set<roadnet::SegmentId> sa(a.segments.begin(),
                                            a.segments.end());
  std::unordered_set<roadnet::SegmentId> sb(b.segments.begin(),
                                            b.segments.end());
  if (sa.empty() && sb.empty()) return 1.0;
  int64_t inter = 0;
  for (const roadnet::SegmentId s : sa) inter += sb.count(s);
  const int64_t uni = static_cast<int64_t>(sa.size() + sb.size()) - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kNone:
      return "none";
    case AnomalyKind::kDetour:
      return "detour";
    case AnomalyKind::kSwitch:
      return "switch";
  }
  return "unknown";
}

}  // namespace traj
}  // namespace causaltad
