#include "util/binary_io.h"

#include <cstring>
#include <limits>

namespace causaltad {
namespace util {
namespace {
constexpr uint64_t kMaxContainer = 1ULL << 32;  // sanity bound on lengths
}

BinaryWriter::BinaryWriter(const std::string& path, uint32_t magic,
                           uint32_t version)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (out_.good()) {
    WriteU32(magic);
    WriteU32(version);
  }
}

void BinaryWriter::WriteRaw(const void* data, size_t n) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteFloats(const std::vector<float>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteInts(const std::vector<int32_t>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(int32_t));
}

void BinaryWriter::WriteI64s(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(int64_t));
}

void BinaryWriter::WriteBytes(const std::vector<int8_t>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size());
}

Status BinaryWriter::Close() {
  out_.flush();
  if (!out_.good()) return Status::IoError("write failed for " + path_);
  out_.close();
  return Status::Ok();
}

BinaryReader::BinaryReader(const std::string& path, uint32_t magic,
                           uint32_t expected_version)
    : BinaryReader(path, magic, expected_version, expected_version) {}

BinaryReader::BinaryReader(const std::string& path, uint32_t magic,
                           uint32_t min_version, uint32_t max_version)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_.good()) {
    Fail("cannot open");
    return;
  }
  ok_ = true;
  const uint32_t got_magic = ReadU32();
  version_ = ReadU32();
  if (!ok_) return;
  if (got_magic != magic) {
    Fail("bad magic");
  } else if (version_ < min_version || version_ > max_version) {
    Fail("unsupported version");
  }
}

void BinaryReader::ReadRaw(void* data, size_t n) {
  if (!ok_) return;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (!in_.good() && n > 0) Fail("truncated read");
}

void BinaryReader::Fail(const std::string& msg) {
  ok_ = false;
  status_ = Status::IoError(msg + " (" + path_ + ")");
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

int64_t BinaryReader::ReadI64() {
  int64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadF32() {
  float v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadF64() {
  double v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > kMaxContainer) {
    Fail("bad string length");
    return "";
  }
  std::string s(n, '\0');
  ReadRaw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::ReadFloats() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > kMaxContainer) {
    Fail("bad vector length");
    return {};
  }
  std::vector<float> v(n);
  ReadRaw(v.data(), n * sizeof(float));
  return v;
}

std::vector<int32_t> BinaryReader::ReadInts() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > kMaxContainer) {
    Fail("bad vector length");
    return {};
  }
  std::vector<int32_t> v(n);
  ReadRaw(v.data(), n * sizeof(int32_t));
  return v;
}

std::vector<int64_t> BinaryReader::ReadI64s() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > kMaxContainer) {
    Fail("bad vector length");
    return {};
  }
  std::vector<int64_t> v(n);
  ReadRaw(v.data(), n * sizeof(int64_t));
  return v;
}

std::vector<int8_t> BinaryReader::ReadBytes() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > kMaxContainer) {
    Fail("bad vector length");
    return {};
  }
  std::vector<int8_t> v(n);
  ReadRaw(v.data(), n);
  return v;
}

void BufferWriter::WriteRaw(const void* data, size_t n) {
  if (n == 0) return;  // empty vectors/strings hand out a null data()
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  out_->insert(out_->end(), bytes, bytes + n);
}

void BufferWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  WriteRaw(s.data(), s.size());
}

void BufferWriter::WriteF64s(const std::vector<double>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  WriteRaw(v.data(), v.size() * sizeof(double));
}

bool BufferReader::Take(void* out, size_t n) {
  if (!ok_ || n > size_ - pos_) {
    ok_ = false;
    return false;
  }
  if (n != 0) std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

uint8_t BufferReader::ReadU8() {
  uint8_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

uint32_t BufferReader::ReadU32() {
  uint32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

uint64_t BufferReader::ReadU64() {
  uint64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

int32_t BufferReader::ReadI32() {
  int32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

double BufferReader::ReadF64() {
  double v = 0.0;
  Take(&v, sizeof(v));
  return v;
}

std::string BufferReader::ReadString() {
  const uint32_t n = ReadU32();
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return "";
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<double> BufferReader::ReadF64s() {
  const uint32_t n = ReadU32();
  if (!ok_ || static_cast<size_t>(n) * sizeof(double) > remaining()) {
    ok_ = false;
    return {};
  }
  std::vector<double> v(n);
  Take(v.data(), static_cast<size_t>(n) * sizeof(double));
  return v;
}

}  // namespace util
}  // namespace causaltad
