#ifndef CAUSALTAD_TRAJ_GPS_SIM_H_
#define CAUSALTAD_TRAJ_GPS_SIM_H_

#include "roadnet/road_network.h"
#include "traj/trajectory.h"
#include "util/random.h"

namespace causaltad {
namespace traj {

/// GPS sampling model for the simulator.
struct GpsSimConfig {
  /// Fix interval in seconds.
  double interval_s = 5.0;
  /// Isotropic Gaussian position noise (meters).
  double noise_sigma_m = 15.0;
  /// Multiplier on segment speeds (traffic slack).
  double speed_factor = 1.0;
};

/// Simulates the GPS trace a vehicle driving `route` would emit: constant
/// speed per segment (segment speed × speed_factor), one fix every
/// interval_s, Gaussian position noise. Substitutes for the real GPS data
/// feeding the paper's map-matching preprocessing step.
GpsTrace SimulateGps(const roadnet::RoadNetwork& network, const Route& route,
                     const GpsSimConfig& config, util::Rng* rng);

}  // namespace traj
}  // namespace causaltad

#endif  // CAUSALTAD_TRAJ_GPS_SIM_H_
