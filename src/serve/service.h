#ifndef CAUSALTAD_SERVE_SERVICE_H_
#define CAUSALTAD_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "serve/streaming.h"
#include "util/latency_histogram.h"

namespace causaltad {
namespace serve {

/// StreamingService knobs. See README.md in this directory for the
/// service/pump/backpressure contract.
struct ServiceOptions {
  /// StreamingBatcher shards. The batcher is single-consumer by design, so
  /// the service scales past one pump's step rate by hashing sessions
  /// across shards; the model is shared read-only.
  int num_shards = 1;
  /// Run one background pump thread per shard around StepIfReady(). With
  /// pumping off the caller drives admission via StepAll()/Flush() — the
  /// benches A/B both modes.
  bool pump = true;
  /// Backpressure: Push returns kSessionFull once one session has this
  /// many unscored points queued (<= 0 disables). A well-behaved producer
  /// slows down; the session's scores stay exact.
  int64_t max_session_pending = 32;
  /// Load shedding: Push returns kShardFull once the session's shard holds
  /// this many queued points in total (<= 0 disables). The point is NOT
  /// enqueued — the caller degrades (drops the trip, fails the request)
  /// instead of growing an unbounded queue. During a model swap the bound
  /// applies per generation (each generation is its own batcher).
  int64_t max_shard_queued = 4096;
  /// Per-shard engine knobs (batch rows, admission deadline, injectable
  /// clock, SD cache). `queue_wait` is overwritten: the service wires every
  /// shard to its own histogram (per-shard, so the adaptive controller can
  /// steer each shard independently; stats() merges them).
  StreamingOptions batcher;

  /// Adaptive per-shard deadlines: when > 0, a per-shard controller tunes
  /// that shard's admission deadline (StreamingOptions::max_delay_ms)
  /// toward this target p95 queue wait in ms. Every adapt_interval_ms (on
  /// the batcher clock, so tests fake it) the controller looks at the p95
  /// queue wait observed since its last adjustment and scales the deadline
  /// multiplicatively: above-target waits shrink it (admit sooner), waits
  /// comfortably under target grow it (fuller batches), clamped to
  /// [min_delay_ms, max_delay_ms_cap] and at most 2x / 0.5x per step.
  /// 0 disables adaptation (the configured max_delay_ms stays fixed).
  double target_queue_wait_p95_ms = 0.0;
  /// Controller cadence; windows with fewer than adapt_min_samples scored
  /// points are skipped (the window keeps accumulating).
  double adapt_interval_ms = 50.0;
  double min_delay_ms = 0.05;
  double max_delay_ms_cap = 50.0;
  int64_t adapt_min_samples = 32;

  /// Metrics sink: the service registers its ops counters and per-shard
  /// queue-wait histograms here (null = obs::Registry::Default()). Inject a
  /// private registry when several services share one process and need
  /// separate expositions (the router fleet tests do).
  obs::Registry* registry = nullptr;
  /// Span sink for traced points (null = tracing off). Forwarded to every
  /// shard batcher with trace_where = "shard=<i>".
  obs::Tracer* tracer = nullptr;
};

/// Ops counters exported by StreamingService::stats().
struct ServiceStats {
  int64_t sessions_begun = 0;
  int64_t points_accepted = 0;
  int64_t rejected_session_full = 0;  // backpressure (not enqueued)
  int64_t rejected_shard_full = 0;    // load shed (not enqueued)
  int64_t points_scored = 0;
  int64_t steps = 0;  // batches that scored >= 1 point, all shards
  /// Mean admitted fraction of a batch: points_scored / (steps ·
  /// max_batch_rows). Low occupancy with high queue wait means the
  /// deadline, not the batch size, is pacing admission.
  double step_occupancy = 0.0;
  /// points_scored / wall-seconds from construction to now (frozen at
  /// Shutdown). Real time, even when the shards run on a fake clock.
  double points_per_sec = 0.0;
  /// Queue wait (Push to batch admission) percentiles in ms, merged across
  /// the per-shard util::LatencyHistograms.
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p95_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  /// Hot-swap lifecycle: SwapModel calls accepted, old generations retired
  /// after draining, and generations currently live across all shards
  /// (num_shards when no swap is in flight).
  int64_t model_swaps = 0;
  int64_t generations_retired = 0;
  int64_t generations_live = 0;
};

/// Production serving front-end over N StreamingBatcher shards: sessions
/// hash across shards at Begin, one background pump thread per shard runs
/// deadline-bounded admission (StepIfReady), Push applies backpressure and
/// load shedding, and stats() exports throughput/occupancy/queue-wait
/// counters. Per-session score parity with a single StreamingBatcher is
/// exact — a session lives on one shard for its whole life and shard
/// composition never changes per-row arithmetic (tests/service_test.cc
/// asserts it).
///
/// Zero-downtime model swap: SwapModel(new_model) starts a fresh batcher
/// generation per shard bound to the new weights. Sessions begun after the
/// swap land on the new generation; sessions begun before it finish on the
/// old model (a session's whole life stays inside one batcher, so its
/// scores are exactly the single-model scores). Drained old generations
/// are retired by the pump (or StepAll when pumping is off). Every model
/// ever swapped in must outlive the service — generations hold raw
/// pointers, and the caller owns model lifetime.
///
/// Thread-safety: all public methods may be called from any thread. Scores
/// are still polled per session in feed order.
class StreamingService {
 public:
  explicit StreamingService(const core::CausalTad* model,
                            ServiceOptions options = {});
  StreamingService(const core::CausalTad* model, core::ScoreVariant variant,
                   double lambda, ServiceOptions options = {});
  /// Calls Shutdown().
  ~StreamingService();

  StreamingService(const StreamingService&) = delete;
  StreamingService& operator=(const StreamingService&) = delete;

  /// Registers a trip on a hashed shard and returns its service-wide id.
  SessionId BeginSession(roadnet::SegmentId source,
                         roadnet::SegmentId destination, int time_slot);
  SessionId Begin(const traj::Trip& trip);

  /// Rebuild-at-offset registration for resume/replay (the net server's
  /// fault-recovery path): the session's first `emit_skip` scored points
  /// advance its state but are not queued for Poll. Replaying a session's
  /// journaled prefix through this reproduces the interrupted score stream
  /// exactly, with delivery restarting at index emit_skip.
  SessionId BeginSessionAt(roadnet::SegmentId source,
                           roadnet::SegmentId destination, int time_slot,
                           int64_t emit_skip);

  /// Queues the session's next observed point, subject to the
  /// backpressure/shedding bounds. Only kAccepted enqueues. After Shutdown()
  /// has begun, returns the terminal kShutdown instead — a Push racing
  /// Shutdown either lands before the final flush (and is scored) or is
  /// rejected; it can never be accepted and then silently dropped.
  PushStatus Push(SessionId id, roadnet::SegmentId segment);

  /// Push carrying a sampled trace identity: a nonzero trace_id rides the
  /// point through admission and the shard batcher records
  /// queue_wait/compute/emit spans for it into options.tracer.
  PushStatus Push(SessionId id, roadnet::SegmentId segment, uint64_t trace_id);

  void End(SessionId id);

  /// Drains the session's scores emitted since the last Poll, feed order.
  std::vector<double> Poll(SessionId id);

  /// One StepIfReady pass over every generation of every shard (manual
  /// pumping when options.pump is false); returns points scored. Also runs
  /// the adaptive-deadline controller and generation retirement, so a
  /// manually-pumped service gets the full lifecycle.
  int64_t StepAll();

  /// Drains every queued point on every shard (deadline bypassed).
  void Flush();

  /// Atomically directs all FUTURE BeginSessions to `model` while live
  /// sessions finish on the weights they started with. Fast: constructs one
  /// batcher per shard (no weight copy — batchers share the model's packed
  /// weights) and flips the generation pointer; any slow weight loading
  /// belongs to the caller, before this call (the net server stages in a
  /// background thread). `model` must outlive the service. Returns false
  /// iff the service has shut down.
  bool SwapModel(const core::CausalTad* model);

  /// The model serving new sessions (the latest SwapModel argument, or the
  /// constructor model before any swap).
  const core::CausalTad* current_model() const;

  /// Runs one adaptive-deadline pass over every shard (no-op unless
  /// options.target_queue_wait_p95_ms > 0 and the shard's interval has
  /// elapsed on the batcher clock). The pump calls this automatically;
  /// public so fake-clock tests and manual pumps can drive it.
  void AdaptDeadlines();

  /// Current admission deadline of one shard (the adaptive controller's
  /// output; options.batcher.max_delay_ms until it first adjusts).
  double shard_delay_ms(int shard) const;

  /// Stops the pump threads, then flushes all shards so every accepted
  /// point has a score before the call returns. Idempotent; Poll keeps
  /// working afterwards.
  void Shutdown();

  ServiceStats stats() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int64_t queued_points() const;
  int64_t tracked_sessions() const;

 private:
  /// Where a service session lives: which generation batcher, and its id
  /// inside that batcher. Service ids stay bijective per shard
  /// (inner * num_shards + shard); the route map resolves inner -> home
  /// batcher because generation-local ids restart per batcher.
  struct Route {
    StreamingBatcher* batcher = nullptr;
    SessionId id = -1;
  };

  struct Shard {
    /// Guards gens/route/next_inner. Push/Poll/End take it shared (their
    /// mutual exclusion lives inside the batcher); Begin, SwapModel, and
    /// retirement take it exclusive.
    mutable std::shared_mutex gens_mu;
    /// Oldest generation first; back() serves new sessions.
    std::vector<std::unique_ptr<StreamingBatcher>> gens;
    std::unordered_map<SessionId, Route> route;
    SessionId next_inner = 0;
    int index = 0;  // position in shards_, for the "shard" metric label
    /// Registry-owned queue-wait histogram (label shard="<i>") — the same
    /// series backs the exposition, stats(), and the adaptive controller.
    obs::Histogram* queue_wait = nullptr;
    std::thread pump;
    std::mutex mu;
    std::condition_variable cv;  // wakes the pump early on Shutdown
    /// Adaptive-deadline controller state (guarded by adapt_mu).
    std::mutex adapt_mu;
    util::LatencyHistogram::Snapshot adapt_base;
    /// Histogram state at service construction: stats() windows the
    /// registry-owned histogram to this instance's samples.
    util::LatencyHistogram::Snapshot stats_base;
    double last_adapt_ms = 0.0;
  };

  void PumpLoop(Shard* shard);
  Shard* ShardOf(SessionId id, SessionId* inner);
  double NowMs() const;
  std::unique_ptr<StreamingBatcher> MakeBatcher(const core::CausalTad* model,
                                                Shard* shard,
                                                double max_delay_ms) const;
  void AdaptShard(Shard* shard);
  /// Retires drained non-current generations (and their route entries).
  void MaybeRetire(Shard* shard);

  ServiceOptions options_;
  obs::Registry* registry_ = nullptr;  // options_.registry or Default()
  core::ScoreVariant variant_;
  double lambda_ = 0.0;
  /// True when constructed via the model-λ constructor: a swap then adopts
  /// the NEW model's λ instead of freezing the old one.
  bool lambda_from_model_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<const core::CausalTad*> model_{nullptr};
  std::atomic<uint64_t> next_session_{0};
  std::atomic<bool> stop_{false};
  // Push holds this shared; Shutdown takes it exclusive to flip accepting_
  // BEFORE joining the pumps and flushing. An in-flight Push therefore
  // either enqueues before the flush (scored) or observes accepting_ ==
  // false (kShutdown) — accepted-but-never-scored is impossible.
  std::shared_mutex accepting_mu_;
  bool accepting_ = true;
  bool shut_down_ = false;
  mutable std::mutex shutdown_mu_;
  std::mutex swap_mu_;  // serializes SwapModel calls
  // Ops counters: instance-owned atomics mirrored into service_* registry
  // series (ScopedCounter), so stats() stays per-instance and exact even
  // when several concurrent services share one registry (Default()), while
  // the exposition accumulates across all of them.
  obs::ScopedCounter sessions_begun_;
  obs::ScopedCounter points_accepted_;
  obs::ScopedCounter rejected_session_full_;
  obs::ScopedCounter rejected_shard_full_;
  obs::ScopedCounter model_swaps_;
  obs::ScopedCounter generations_retired_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point stop_time_;
};

}  // namespace serve
}  // namespace causaltad

#endif  // CAUSALTAD_SERVE_SERVICE_H_
