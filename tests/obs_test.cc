// Observability-layer tests: registry handle stability and exposition
// format, the process-wide Enabled() gate, Scoped wrapper locality under
// shared registries, the periodic JSON snapshot writer, tracer ring/slow-log
// mechanics, and the acceptance scenario from the issue — a 3-backend router
// fleet where one traced point's full span chain (client push -> router leg
// -> backend dispatch -> shard queue-wait -> pump compute -> score emit) is
// reconstructed from a single tracer JSON dump, and one downstream scrape
// returns the whole fleet's metrics with backend labels.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "models/scorer.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "serve/streaming.h"
#include "util/logging.h"

namespace causaltad {
namespace {

using core::CausalTad;
using eval::BuildExperiment;
using eval::ExperimentData;
using eval::Scale;
using eval::XianConfig;
using net::Client;
using net::ClientOptions;
using net::Router;
using net::RouterBackend;
using net::RouterOptions;
using net::Server;
using net::ServerOptions;
using serve::ServiceOptions;
using serve::StreamingService;

// Tests that flip the global metrics switch restore it on every exit path.
struct EnabledGuard {
  ~EnabledGuard() { obs::SetEnabled(true); }
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(RegistryTest, HandlesAreStablePerNameAndLabels) {
  obs::Registry registry;
  obs::Counter* a = registry.GetCounter("requests_total");
  obs::Counter* b = registry.GetCounter("requests_total");
  EXPECT_EQ(a, b);
  obs::Counter* labeled =
      registry.GetCounter("requests_total", {{"tenant", "t0"}});
  EXPECT_NE(a, labeled);
  EXPECT_EQ(labeled, registry.GetCounter("requests_total", {{"tenant", "t0"}}));
  // Distinct label VALUES are distinct series.
  EXPECT_NE(labeled,
            registry.GetCounter("requests_total", {{"tenant", "t1"}}));
  registry.GetGauge("live_sessions");
  registry.GetHistogram("wait_ms");
  EXPECT_EQ(registry.series(), 5);
}

TEST(RegistryTest, ExpositionTextIsVersionedSortedAndByteExact) {
  obs::Registry registry;
  registry.GetCounter("requests_total")->Inc(3);
  registry.GetCounter("requests_total", {{"tenant", "t0"}})->Inc();
  registry.GetGauge("live_sessions")->Set(-2);
  registry.GetHistogram("wait_ms");  // registered, empty

  // std::map keying makes the output sorted and diffable; an empty
  // histogram renders all-zero so the whole exposition is byte-exact.
  EXPECT_EQ(registry.ExpositionText(),
            "# causaltad_metrics v1\n"
            "live_sessions -2\n"
            "requests_total 3\n"
            "requests_total{tenant=\"t0\"} 1\n"
            "wait_ms_count 0\n"
            "wait_ms_mean_ms 0\n"
            "wait_ms_p50_ms 0\n"
            "wait_ms_p95_ms 0\n"
            "wait_ms_p99_ms 0\n");
}

TEST(RegistryTest, HistogramSeriesExposePercentiles) {
  obs::Registry registry;
  obs::Histogram* h = registry.GetHistogram("wait_ms", {{"shard", "0"}});
  for (int i = 0; i < 100; ++i) h->Observe(2.0);
  const std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("wait_ms_count{shard=\"0\"} 100"), std::string::npos)
      << text;
  EXPECT_NE(text.find("wait_ms_mean_ms{shard=\"0\"} 2"), std::string::npos)
      << text;
  EXPECT_NEAR(h->percentile(50.0), 2.0, 0.5);
  EXPECT_NEAR(h->percentile(99.0), 2.0, 0.5);
}

TEST(RegistryTest, JsonSnapshotCarriesVersionAndTypes) {
  obs::Registry registry;
  registry.GetCounter("requests_total")->Inc(7);
  registry.GetGauge("live_sessions")->Set(4);
  registry.GetHistogram("wait_ms")->Observe(1.0);
  const std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"requests_total\", \"labels\": {}, "
                      "\"type\": \"counter\", \"value\": 7"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"type\": \"gauge\", \"value\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\", \"count\": 1"),
            std::string::npos);
}

TEST(RegistryTest, SetEnabledFreezesAllInstrumentTypes) {
  EnabledGuard guard;
  obs::Registry registry;
  obs::Counter* c = registry.GetCounter("requests_total");
  obs::Gauge* g = registry.GetGauge("live_sessions");
  obs::Histogram* h = registry.GetHistogram("wait_ms");
  c->Inc(2);
  g->Set(5);
  h->Observe(1.0);

  obs::SetEnabled(false);
  EXPECT_FALSE(obs::Enabled());
  c->Inc(100);
  g->Set(100);
  g->Add(100);
  h->Observe(100.0);
  EXPECT_EQ(c->value(), 2);
  EXPECT_EQ(g->value(), 5);
  EXPECT_EQ(h->count(), 1);

  obs::SetEnabled(true);
  c->Inc();
  EXPECT_EQ(c->value(), 3);
}

// ---------------------------------------------------------------------------
// Scoped wrappers: per-instance truth, shared-registry accumulation.
// ---------------------------------------------------------------------------

TEST(ScopedCounterTest, LocalValueIsPerInstanceWhileSeriesAccumulates) {
  obs::Registry registry;
  obs::ScopedCounter a;
  obs::ScopedCounter b;
  a.Bind(&registry, "service_sessions_begun_total");
  b.Bind(&registry, "service_sessions_begun_total");
  a.Inc(3);
  b.Inc(5);
  // Two concurrent components sharing one registry: each stats() view stays
  // scoped to its own instance, the fleet series sums across both.
  EXPECT_EQ(a.value(), 3);
  EXPECT_EQ(b.value(), 5);
  EXPECT_EQ(registry.GetCounter("service_sessions_begun_total")->value(), 8);
}

TEST(ScopedCounterTest, LocalValueIgnoresEnabledGate) {
  EnabledGuard guard;
  obs::Registry registry;
  obs::ScopedCounter c;
  c.Bind(&registry, "service_points_accepted_total");
  obs::SetEnabled(false);
  c.Inc(4);
  // stats() correctness must not depend on the metrics toggle; only the
  // registry mirror freezes.
  EXPECT_EQ(c.value(), 4);
  EXPECT_EQ(registry.GetCounter("service_points_accepted_total")->value(), 0);
}

TEST(ScopedGaugeTest, FunctionalValueSurvivesDisabledMetrics) {
  EnabledGuard guard;
  obs::Registry registry;
  obs::ScopedGauge g;
  g.Bind(&registry, "server_connections_active");
  g.Add(2);
  obs::SetEnabled(false);
  g.Add(-2);
  // Drain loops poll this value; a frozen gauge would deadlock a drain
  // when metrics are off.
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(registry.GetGauge("server_connections_active")->value(), 2);
}

TEST(ScopedCounterTest, UnboundCounterStillCounts) {
  obs::ScopedCounter c;
  c.Inc(2);
  EXPECT_EQ(c.value(), 2);
}

// ---------------------------------------------------------------------------
// Periodic JSON writer.
// ---------------------------------------------------------------------------

TEST(PeriodicJsonWriterTest, WritesSnapshotsAndFinalOnDestruction) {
  obs::Registry registry;
  registry.GetCounter("requests_total")->Inc(9);
  const std::string path = testing::TempDir() + "obs_snapshot_test.json";
  std::remove(path.c_str());
  int64_t writes_seen = 0;
  {
    obs::PeriodicJsonWriter writer(&registry, path, /*interval_ms=*/5.0);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (writer.writes() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    writes_seen = writer.writes();
    registry.GetCounter("requests_total")->Inc();  // 10, caught by the
                                                   // shutdown snapshot
  }
  EXPECT_GE(writes_seen, 2);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << path;
  std::string content(1 << 12, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  EXPECT_NE(content.find("\"version\": 1"), std::string::npos) << content;
  EXPECT_NE(content.find("\"name\": \"requests_total\""), std::string::npos);
  EXPECT_NE(content.find("\"value\": 10"), std::string::npos)
      << "final shutdown snapshot missing: " << content;
  // The atomic tmp+rename never leaves a partial file behind.
  EXPECT_EQ(std::fopen((path + ".tmp").c_str(), "r"), nullptr);
  std::remove(path.c_str());
}

TEST(PeriodicJsonWriterTest, FromEnvIsOptIn) {
  ::unsetenv("CAUSALTAD_METRICS_JSON");
  EXPECT_EQ(obs::PeriodicJsonWriter::FromEnv(obs::Registry::Default()),
            nullptr);
  const std::string path = testing::TempDir() + "obs_fromenv_test.json";
  ::setenv("CAUSALTAD_METRICS_JSON", path.c_str(), 1);
  ::setenv("CAUSALTAD_METRICS_JSON_INTERVAL_MS", "5", 1);
  {
    obs::Registry registry;
    auto writer = obs::PeriodicJsonWriter::FromEnv(&registry);
    ASSERT_NE(writer, nullptr);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (writer->writes() < 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(writer->writes(), 1);
  }
  ::unsetenv("CAUSALTAD_METRICS_JSON");
  ::unsetenv("CAUSALTAD_METRICS_JSON_INTERVAL_MS");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Tracer.
// ---------------------------------------------------------------------------

TEST(TracerTest, RingBoundsCapacityAndKeepsRecordedTotal) {
  obs::Tracer tracer(/*capacity=*/16);
  for (uint64_t i = 1; i <= 40; ++i) {
    tracer.Record(i, "compute", "shard=0", 0.0, 1.0);
  }
  EXPECT_EQ(tracer.recorded(), 40);
  // Early spans were overwritten by the ring; late ones survive.
  EXPECT_TRUE(tracer.SpansFor(1).empty());
  ASSERT_EQ(tracer.SpansFor(40).size(), 1u);
  EXPECT_EQ(tracer.SpansFor(40)[0].stage, "compute");
  EXPECT_EQ(tracer.SpansFor(40)[0].where, "shard=0");
}

TEST(TracerTest, ZeroTraceIdAndDisabledMetricsAreNoOps) {
  EnabledGuard guard;
  obs::Tracer tracer;
  tracer.Record(0, "compute", "shard=0", 0.0, 1.0);
  EXPECT_EQ(tracer.recorded(), 0);
  obs::SetEnabled(false);
  tracer.Record(7, "compute", "shard=0", 0.0, 1.0);
  EXPECT_EQ(tracer.recorded(), 0);
}

TEST(TracerTest, DumpJsonHoldsEveryRingSpan) {
  obs::Tracer tracer;
  tracer.Record(12, "queue_wait", "shard=1", 10.0, 0.5);
  tracer.Record(12, "compute", "shard=1", 10.5, 2.0);
  const std::string dump = tracer.DumpJson();
  EXPECT_NE(dump.find("\"trace_id\": 12, \"stage\": \"queue_wait\", "
                      "\"where\": \"shard=1\""),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("\"stage\": \"compute\""), std::string::npos);
  EXPECT_NE(dump.find("\"duration_ms\": 2.0000"), std::string::npos);
}

TEST(TracerTest, SlowRootCapturesFullChainIntoSlowLog) {
  obs::Tracer tracer;
  tracer.set_slow_threshold_ms(5.0);
  // A fast trace: no slow chain.
  tracer.Record(1, "compute", "shard=0", 0.0, 0.1);
  tracer.Record(1, "client_push_rtt", "client", 0.0, 0.5, /*root=*/true);
  EXPECT_EQ(tracer.slow_chains(), 0);
  // A slow trace: the root copies its whole chain into the side log.
  tracer.Record(2, "queue_wait", "shard=1", 1.0, 4.0);
  tracer.Record(2, "compute", "shard=1", 5.0, 6.0);
  tracer.Record(2, "client_push_rtt", "client", 0.0, 12.0, /*root=*/true);
  EXPECT_EQ(tracer.slow_chains(), 1);
  const std::string slow = tracer.SlowLogJson();
  EXPECT_NE(slow.find("\"root\": {\"trace_id\": 2"), std::string::npos)
      << slow;
  EXPECT_NE(slow.find("\"stage\": \"queue_wait\""), std::string::npos);
  EXPECT_NE(slow.find("\"stage\": \"compute\""), std::string::npos);
  // Even after the ring is cleared, the slow log keeps its copies.
  tracer.Clear();
  EXPECT_EQ(tracer.slow_chains(), 0);  // Clear drops the log too
}

// ---------------------------------------------------------------------------
// Acceptance: 3-backend fleet, span chain from one JSON dump, fleet scrape.
// ---------------------------------------------------------------------------

const ExperimentData& Data() {
  static const ExperimentData* data =
      new ExperimentData(BuildExperiment(XianConfig(Scale::kSmoke)));
  return *data;
}

const CausalTad* FittedCausal() {
  static const models::TrajectoryScorer* scorer = [] {
    auto owned = eval::MakeScorer("CausalTAD", Data(), Scale::kSmoke);
    models::FitOptions options;
    options.epochs = 2;
    options.lr = 3e-3f;
    options.seed = 17;
    owned->Fit(Data().train, options);
    return owned.release();
  }();
  return dynamic_cast<const CausalTad*>(scorer);
}

// Minimal parsed view of one tracer dump entry — the test reconstructs the
// chain from the JSON text alone, exactly as an offline tool would.
struct DumpSpan {
  uint64_t trace_id = 0;
  std::string stage;
  std::string where;
  double start_ms = 0.0;
};

std::vector<DumpSpan> ParseDump(const std::string& json) {
  std::vector<DumpSpan> out;
  const std::string head = "{\"trace_id\": ";
  size_t pos = 0;
  while ((pos = json.find(head, pos)) != std::string::npos) {
    DumpSpan span;
    span.trace_id = std::strtoull(json.c_str() + pos + head.size(), nullptr,
                                  10);
    const size_t end = json.find('}', pos);
    const std::string line = json.substr(pos, end - pos);
    const auto field = [&line](const std::string& key) {
      const std::string tag = "\"" + key + "\": \"";
      const size_t a = line.find(tag);
      if (a == std::string::npos) return std::string();
      const size_t b = line.find('"', a + tag.size());
      return line.substr(a + tag.size(), b - a - tag.size());
    };
    span.stage = field("stage");
    span.where = field("where");
    const size_t start = line.find("\"start_ms\": ");
    if (start != std::string::npos) {
      span.start_ms = std::atof(line.c_str() + start + 12);
    }
    out.push_back(std::move(span));
    pos = end;
  }
  return out;
}

TEST(ObsFleetTest, SpanChainReconstructsFromOneDumpAndScrapeCoversFleet) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = eval::Subsample(Data().id_test, 3, 7);
  ASSERT_GE(trips.size(), 2u);

  // Per-backend registries keep each kStats scrape scoped to its backend;
  // ONE shared tracer collects every tier's spans so a single dump holds
  // whole chains.
  obs::Tracer tracer;
  obs::Registry backend_registry[3];
  obs::Registry router_registry;
  obs::Registry client_registry;

  struct Backend {
    std::unique_ptr<StreamingService> service;
    std::unique_ptr<Server> server;
  };
  std::vector<std::unique_ptr<Backend>> backends;
  for (int i = 0; i < 3; ++i) {
    auto backend = std::make_unique<Backend>();
    ServiceOptions sopts;
    sopts.num_shards = 2;
    sopts.pump = true;
    sopts.batcher.max_batch_rows = 16;
    sopts.batcher.max_delay_ms = 0.25;
    sopts.registry = &backend_registry[i];
    sopts.tracer = &tracer;
    backend->service = std::make_unique<StreamingService>(causal, sopts);
    ServerOptions oopts;
    oopts.network = &Data().city.network;
    oopts.registry = &backend_registry[i];
    oopts.tracer = &tracer;
    oopts.trace_where = "backend=" + std::to_string(i);
    backend->server = std::make_unique<Server>(backend->service.get(), oopts);
    ASSERT_TRUE(backend->server->Start().ok());
    backends.push_back(std::move(backend));
  }

  RouterOptions ropts;
  ropts.idle_tick_ms = 5.0;
  ropts.health_interval_ms = 10.0;
  ropts.registry = &router_registry;
  ropts.tracer = &tracer;
  std::vector<RouterBackend> router_backends;
  for (int i = 0; i < 3; ++i) {
    RouterBackend b;
    Server* server = backends[i]->server.get();
    b.dialer = [server] { return server->AddLoopbackConnection(); };
    router_backends.push_back(std::move(b));
  }
  Router router(std::move(router_backends), ropts);
  ASSERT_TRUE(router.Start().ok());

  std::string fleet_text;
  {
    ClientOptions copts;
    copts.registry = &client_registry;
    copts.tracer = &tracer;
    copts.trace_sample_period = 1;  // every push traced
    copts.trace_slow_ms = 1e-6;    // every RTT "slow": slow log fills too
    auto client = Client::FromFd(router.AddLoopbackConnection(), copts);
    ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();
    for (const auto& trip : trips) {
      const uint64_t id = client->Begin(trip.route.segments.front(),
                                        trip.route.segments.back(),
                                        trip.time_slot);
      for (const auto segment : trip.route.segments) {
        ASSERT_TRUE(client->Push(id, segment).ok())
            << client->status().ToString();
      }
      const auto scores = client->Finish(id);
      ASSERT_TRUE(scores.ok()) << scores.status().ToString();
      EXPECT_EQ(scores->size(), trip.route.segments.size());
    }
    ASSERT_TRUE(client->ScrapeStats(&fleet_text).ok())
        << client->status().ToString();
  }

  // --- Span chain, reconstructed from ONE JSON dump. ---
  const std::vector<DumpSpan> spans = ParseDump(tracer.DumpJson());
  ASSERT_FALSE(spans.empty());
  // Pick a trace whose root RTT span made it back (Finish drained all
  // scores, so every sampled push has one).
  uint64_t chain_id = 0;
  double root_start = 0.0;
  for (const DumpSpan& s : spans) {
    if (s.stage == "client_push_rtt") {
      chain_id = s.trace_id;
      root_start = s.start_ms;
      break;
    }
  }
  ASSERT_NE(chain_id, 0u) << tracer.DumpJson();
  std::set<std::string> stages;
  for (const DumpSpan& s : spans) {
    if (s.trace_id != chain_id) continue;
    stages.insert(s.stage);
    if (s.stage == "router_leg") EXPECT_EQ(s.where, "router");
    if (s.stage == "server_dispatch") {
      EXPECT_EQ(s.where.rfind("backend=", 0), 0u) << s.where;
    }
    if (s.stage == "queue_wait" || s.stage == "compute" ||
        s.stage == "emit") {
      EXPECT_EQ(s.where.rfind("shard=", 0), 0u) << s.where;
    }
    // Everything downstream happens inside the client's RTT window.
    if (s.stage != "client_push_rtt") {
      EXPECT_GE(s.start_ms, root_start - 1.0) << s.stage;
    }
  }
  const std::set<std::string> want = {"client_push_rtt", "server_dispatch",
                                      "router_leg",      "queue_wait",
                                      "compute",         "emit"};
  EXPECT_EQ(stages, want) << tracer.DumpJson();
  // The sub-ms slow threshold means root spans landed in the slow log with
  // their chains attached.
  EXPECT_GE(tracer.slow_chains(), 1);
  EXPECT_NE(tracer.SlowLogJson().find("client_push_rtt"), std::string::npos);

  // --- Fleet scrape through the downstream client. ---
  EXPECT_EQ(fleet_text.rfind("# causaltad_metrics v1\n", 0), 0u)
      << fleet_text.substr(0, 120);
  for (int i = 0; i < 3; ++i) {
    const std::string label = "backend=\"" + std::to_string(i) + "\"";
    EXPECT_NE(fleet_text.find(label), std::string::npos)
        << "missing " << label << " in:\n"
        << fleet_text;
  }
  // Backend series (service + server share each backend registry) carry the
  // injected backend label; the router's own series ride along unlabeled.
  EXPECT_NE(fleet_text.find("service_points_accepted_total{backend=\""),
            std::string::npos)
      << fleet_text;
  EXPECT_NE(fleet_text.find("server_pushes_accepted_total{backend=\""),
            std::string::npos)
      << fleet_text;
  EXPECT_NE(fleet_text.find("router_sessions_opened_total "),
            std::string::npos)
      << fleet_text;
  // The client kept its own registry out of the fleet view but counted its
  // side of the conversation.
  EXPECT_EQ(
      client_registry.GetCounter("client_pushes_sent_total")->value(), [&] {
        int64_t total = 0;
        for (const auto& trip : trips) {
          total += static_cast<int64_t>(trip.route.segments.size());
        }
        return total;
      }());

  router.Stop();
  for (auto& backend : backends) {
    backend->server->Stop();
    backend->service->Shutdown();
  }
}

}  // namespace
}  // namespace causaltad
