#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace causaltad {
namespace net {
namespace {

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  // Best effort: fails harmlessly on AF_UNIX loopback pairs.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Scores per ScoreDelta frame: 64 KiB of payload, far under the 1 MiB
// frame cap, so a session's unpolled backlog of any size streams back as a
// sequence of decodable frames.
constexpr size_t kMaxScoresPerDelta = 8192;

}  // namespace

Server::Server(serve::StreamingService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  CAUSALTAD_CHECK(service != nullptr);
}

Server::~Server() { Stop(); }

util::Status Server::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return util::Status::FailedPrecondition("already started");
  if (pipe2(wake_fds_, O_NONBLOCK | O_CLOEXEC) != 0) {
    return util::Status::IoError("pipe2 failed: " +
                                 std::string(std::strerror(errno)));
  }
  if (options_.listen_port >= 0) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
    if (listen_fd_ < 0) {
      return util::Status::IoError("socket failed: " +
                                   std::string(std::strerror(errno)));
    }
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.listen_port));
    if (inet_pton(AF_INET, options_.listen_host.c_str(), &addr.sin_addr) !=
        1) {
      return util::Status::InvalidArgument("bad listen_host " +
                                           options_.listen_host);
    }
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        listen(listen_fd_, 64) != 0) {
      const std::string err = std::strerror(errno);
      close(listen_fd_);
      listen_fd_ = -1;
      return util::Status::IoError("bind/listen failed: " + err);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  started_ = true;
  stop_.store(false, std::memory_order_release);
  loop_ = std::thread([this] { Loop(); });
  return util::Status::Ok();
}

void Server::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  const char byte = 1;
  [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
  if (loop_.joinable()) loop_.join();
  // Loop has exited: close everything it owned and end the sessions the
  // dead connections still held, so the service releases their rows.
  for (auto& conn : connections_) {
    if (conn->fd >= 0) CloseConnection(conn.get());
  }
  connections_.clear();
  connections_active_.store(0, std::memory_order_relaxed);
  // Best-effort orphan drain of scores already emitted (no waiting: the
  // service may keep scoring queued points after we return).
  DrainOrphans();
  {
    std::lock_guard<std::mutex> pending_lock(pending_mu_);
    for (const int fd : pending_fds_) close(fd);
    pending_fds_.clear();
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  close(wake_fds_[0]);
  close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  started_ = false;
}

int Server::AddLoopbackConnection() {
  int fds[2];
  CAUSALTAD_CHECK_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0)
      << "socketpair failed: " << std::strerror(errno);
  SetNonBlocking(fds[0]);
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_fds_.push_back(fds[0]);
  }
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (started_) {
      const char byte = 1;
      [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
    }
  }
  return fds[1];
}

void Server::AdoptPending() {
  std::vector<int> adopted;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    adopted.swap(pending_fds_);
  }
  for (const int fd : adopted) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    connections_.push_back(std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::AcceptTcp() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;
    SetNoDelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    connections_.push_back(std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::Loop() {
  std::vector<pollfd> fds;
  std::vector<Connection*> polled;
  while (!stop_.load(std::memory_order_acquire)) {
    AdoptPending();

    fds.clear();
    polled.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& conn : connections_) {
      if (conn->fd < 0) continue;
      short events = conn->closing ? 0 : POLLIN;
      if (conn->woff < conn->wbuf.size()) events |= POLLOUT;
      if (events == 0) {  // closing and fully flushed
        CloseConnection(conn.get());
        continue;
      }
      fds.push_back({conn->fd, events, 0});
      polled.push_back(conn.get());
    }
    // With orphans pending, tick fast enough to drain their scores as the
    // service emits them; otherwise just often enough to notice Stop()
    // races lost to the wake pipe.
    const int timeout_ms = orphans_.empty() ? 50 : 2;
    const int ready = poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    size_t base = 1;
    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (listen_fd_ >= 0) {
      if (fds[base].revents & POLLIN) AcceptTcp();
      ++base;
    }
    for (size_t i = 0; i < polled.size(); ++i) {
      Connection* conn = polled[i];
      const short revents = fds[base + i].revents;
      if (revents & POLLOUT) {
        if (!FlushWrites(conn)) {
          CloseConnection(conn);
          continue;
        }
      }
      if (revents & POLLIN) ReadConnection(conn);
      if ((revents & (POLLERR | POLLHUP)) && conn->fd >= 0 &&
          conn->woff >= conn->wbuf.size()) {
        CloseConnection(conn);
      }
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& c) {
                         return c->fd < 0;
                       }),
        connections_.end());
    DrainOrphans();
  }
}

void Server::ReadConnection(Connection* conn) {
  uint8_t buf[64 * 1024];
  while (conn->fd >= 0 && !conn->closing) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_received_.fetch_add(n, std::memory_order_relaxed);
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      Frame frame;
      while (conn->fd >= 0 && !conn->closing && conn->decoder.Next(&frame)) {
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        util::Stopwatch dispatch_watch;
        HandleFrame(conn, frame);
        dispatch_.Add(dispatch_watch.ElapsedMillis());
      }
      if (!conn->decoder.status().ok() && conn->fd >= 0 && !conn->closing) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, ErrorCode::kProtocol,
                  conn->decoder.status().message());
        conn->closing = true;
      }
      if (static_cast<ssize_t>(sizeof(buf)) > n) break;  // drained
    } else if (n == 0) {
      CloseConnection(conn);  // peer closed
      break;
    } else if (errno == EINTR) {
      continue;
    } else {
      if (errno != EAGAIN && errno != EWOULDBLOCK) CloseConnection(conn);
      break;
    }
  }
}

void Server::HandleFrame(Connection* conn, const Frame& frame) {
  if (!conn->authed && frame.type != FrameType::kHello) {
    auth_failures_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, ErrorCode::kAuthRequired, "first frame must be Hello");
    conn->closing = true;
    return;
  }
  switch (frame.type) {
    case FrameType::kHello:
      HandleHello(conn, frame);
      return;
    case FrameType::kBegin:
      HandleBegin(conn, frame);
      return;
    case FrameType::kPush:
      HandlePush(conn, frame);
      return;
    case FrameType::kEnd:
      HandleEnd(conn, frame);
      return;
    case FrameType::kPoll:
      HandlePoll(conn, frame);
      return;
    case FrameType::kScoreDelta:
    case FrameType::kPushReject:
    case FrameType::kError:
      break;  // server-to-client frames are not valid requests
  }
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  SendError(conn, ErrorCode::kProtocol, "client sent a server-only frame");
  conn->closing = true;
}

void Server::HandleHello(Connection* conn, const Frame& frame) {
  if (conn->authed) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, ErrorCode::kProtocol, "duplicate Hello");
    conn->closing = true;
    return;
  }
  if (!options_.tenant_tokens.empty()) {
    const auto it = options_.tenant_tokens.find(frame.tenant);
    if (it == options_.tenant_tokens.end() ||
        it->second != frame.auth_token) {
      auth_failures_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, ErrorCode::kAuthFailed,
                "unknown tenant or bad token for '" + frame.tenant + "'");
      conn->closing = true;
      return;
    }
  }
  conn->authed = true;
  conn->tenant = frame.tenant;
}

void Server::HandleBegin(Connection* conn, const Frame& frame) {
  if (conn->sessions.count(frame.session) != 0) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, ErrorCode::kDuplicateSession,
              "session " + std::to_string(frame.session) + " already open");
    conn->closing = true;
    return;
  }
  if (options_.network != nullptr) {
    const int64_t n = options_.network->num_segments();
    if (frame.source < 0 || frame.source >= n || frame.destination < 0 ||
        frame.destination >= n) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, ErrorCode::kInvalidSegment,
                "Begin endpoints out of range");
      conn->closing = true;
      return;
    }
  }
  SessionState state;
  state.inner = service_->BeginSession(frame.source, frame.destination,
                                       frame.time_slot);
  conn->sessions.emplace(frame.session, state);
}

int64_t* Server::TenantPending(const std::string& tenant) {
  return &tenant_pending_[tenant];
}

void Server::HandlePush(Connection* conn, const Frame& frame) {
  const auto it = conn->sessions.find(frame.session);
  if (it == conn->sessions.end()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, ErrorCode::kUnknownSession,
              "Push for unknown session " + std::to_string(frame.session));
    conn->closing = true;
    return;
  }
  SessionState& state = it->second;
  if (state.ended) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, ErrorCode::kProtocol, "Push after End");
    conn->closing = true;
    return;
  }
  // In-order admission: once a push is rejected, every later in-flight push
  // of the session bounces as out-of-order until the client resends from
  // the gap — the session's accepted stream can never skip a point.
  if (frame.seq != state.expected_seq) {
    rejected_out_of_order_.fetch_add(1, std::memory_order_relaxed);
    SendReject(conn, frame, RejectReason::kOutOfOrder);
    return;
  }
  if (options_.network != nullptr) {
    const int64_t n = options_.network->num_segments();
    const bool in_range = frame.segment >= 0 && frame.segment < n;
    if (!in_range || (state.has_last &&
                      !options_.network->IsSuccessor(state.last,
                                                     frame.segment))) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, ErrorCode::kInvalidSegment,
                in_range ? "segment is not a legal successor"
                         : "segment id out of range");
      conn->closing = true;
      return;
    }
  }
  // Tenant shed quota, checked before the push reaches a shard: points the
  // tenant has pushed but not yet drained via Poll count against it.
  int64_t* pending = TenantPending(conn->tenant);
  if (options_.tenant_max_pending > 0 &&
      *pending >= options_.tenant_max_pending) {
    rejected_quota_.fetch_add(1, std::memory_order_relaxed);
    SendReject(conn, frame, RejectReason::kQuota);
    return;
  }
  switch (service_->Push(state.inner, frame.segment)) {
    case serve::PushStatus::kAccepted:
      ++state.expected_seq;
      ++state.accepted;
      ++*pending;
      state.last = frame.segment;
      state.has_last = true;
      pushes_accepted_.fetch_add(1, std::memory_order_relaxed);
      return;  // accepted pushes are not answered — scores are the ack
    case serve::PushStatus::kSessionFull:
      rejected_session_full_.fetch_add(1, std::memory_order_relaxed);
      SendReject(conn, frame, RejectReason::kSessionFull);
      return;
    case serve::PushStatus::kShardFull:
      rejected_shard_full_.fetch_add(1, std::memory_order_relaxed);
      SendReject(conn, frame, RejectReason::kShardFull);
      return;
    case serve::PushStatus::kShutdown:
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      SendReject(conn, frame, RejectReason::kShutdown);
      return;
  }
}

void Server::HandleEnd(Connection* conn, const Frame& frame) {
  const auto it = conn->sessions.find(frame.session);
  if (it == conn->sessions.end()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, ErrorCode::kUnknownSession,
              "End for unknown session " + std::to_string(frame.session));
    conn->closing = true;
    return;
  }
  if (it->second.ended) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, ErrorCode::kProtocol, "duplicate End");
    conn->closing = true;
    return;
  }
  it->second.ended = true;
  service_->End(it->second.inner);
  MaybeForgetSession(conn, frame.session);
}

void Server::HandlePoll(Connection* conn, const Frame& frame) {
  std::vector<double> scores;
  const auto it = conn->sessions.find(frame.session);
  const bool known = it != conn->sessions.end();
  if (known) {
    scores = service_->Poll(it->second.inner);
    it->second.delivered += static_cast<int64_t>(scores.size());
    *TenantPending(conn->tenant) -= static_cast<int64_t>(scores.size());
  }
  // Unknown sessions get an empty delta: a Poll is ALWAYS answered, so
  // clients can use it as an ordering barrier (e.g. right after Hello).
  // A large backlog is split across frames so no delta ever exceeds
  // kMaxFramePayload; only the LAST chunk echoes the token, so the
  // client's barrier still means "everything before this has arrived".
  size_t sent = 0;
  do {
    Frame delta;
    delta.type = FrameType::kScoreDelta;
    delta.session = frame.session;
    const size_t chunk = std::min(scores.size() - sent, kMaxScoresPerDelta);
    delta.scores.assign(scores.begin() + static_cast<int64_t>(sent),
                        scores.begin() + static_cast<int64_t>(sent + chunk));
    sent += chunk;
    if (sent == scores.size()) delta.token = frame.token;
    SendFrame(conn, delta);
    // SendFrame may have closed the connection (broken pipe / slow
    // consumer), invalidating `it` and the session map — stop touching
    // both.
    if (conn->fd < 0) return;
  } while (sent < scores.size());
  if (known) MaybeForgetSession(conn, frame.session);
}

void Server::MaybeForgetSession(Connection* conn, uint64_t id) {
  const auto it = conn->sessions.find(id);
  if (it == conn->sessions.end()) return;
  if (it->second.ended && it->second.delivered == it->second.accepted) {
    conn->sessions.erase(it);
  }
}

void Server::SendFrame(Connection* conn, const Frame& frame) {
  if (conn->fd < 0) return;
  EncodeFrame(frame, &conn->wbuf);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  if (!FlushWrites(conn)) {
    CloseConnection(conn);
    return;
  }
  if (conn->wbuf.size() - conn->woff > options_.max_connection_backlog) {
    // Slow consumer: it is not reading its deltas; cut it loose instead of
    // buffering without bound.
    CloseConnection(conn);
  }
}

void Server::SendError(Connection* conn, ErrorCode code,
                       const std::string& message) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.code = code;
  frame.message = message;
  SendFrame(conn, frame);
}

void Server::SendReject(Connection* conn, const Frame& push,
                        RejectReason reason) {
  Frame frame;
  frame.type = FrameType::kPushReject;
  frame.session = push.session;
  frame.seq = push.seq;
  frame.wire_seq = push.wire_seq;
  frame.reason = reason;
  SendFrame(conn, frame);
}

bool Server::FlushWrites(Connection* conn) {
  while (conn->woff < conn->wbuf.size()) {
    const ssize_t n =
        send(conn->fd, conn->wbuf.data() + conn->woff,
             conn->wbuf.size() - conn->woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn->woff += static_cast<size_t>(n);
      bytes_sent_.fetch_add(n, std::memory_order_relaxed);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // broken pipe etc.
  }
  if (conn->woff == conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->woff = 0;
  } else if (conn->woff > (1u << 20)) {
    conn->wbuf.erase(conn->wbuf.begin(),
                     conn->wbuf.begin() + static_cast<int64_t>(conn->woff));
    conn->woff = 0;
  }
  return true;
}

void Server::CloseConnection(Connection* conn) {
  if (conn->fd < 0) return;
  close(conn->fd);
  conn->fd = -1;
  connections_active_.fetch_add(-1, std::memory_order_relaxed);
  // End the sessions the connection still owns. Their queued points are
  // still scored; the orphan list keeps polling so the service forgets them
  // and the tenant's quota drains back.
  for (auto& [id, state] : conn->sessions) {
    if (!state.ended) service_->End(state.inner);
    if (state.accepted > state.delivered || !state.ended) {
      orphans_.push_back(
          {state.inner, conn->tenant, state.accepted - state.delivered});
    }
  }
  conn->sessions.clear();
}

void Server::DrainOrphans() {
  for (size_t i = 0; i < orphans_.size();) {
    Orphan& orphan = orphans_[i];
    const std::vector<double> scores = service_->Poll(orphan.inner);
    const int64_t n = static_cast<int64_t>(scores.size());
    orphan.remaining -= n;
    *TenantPending(orphan.tenant) -= n;
    if (orphan.remaining <= 0) {
      orphans_[i] = orphans_.back();
      orphans_.pop_back();
    } else {
      ++i;
    }
  }
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_active =
      connections_active_.load(std::memory_order_relaxed);
  stats.frames_received = frames_received_.load(std::memory_order_relaxed);
  stats.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  stats.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  stats.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  stats.pushes_accepted = pushes_accepted_.load(std::memory_order_relaxed);
  stats.rejected_session_full =
      rejected_session_full_.load(std::memory_order_relaxed);
  stats.rejected_shard_full =
      rejected_shard_full_.load(std::memory_order_relaxed);
  stats.rejected_quota = rejected_quota_.load(std::memory_order_relaxed);
  stats.rejected_out_of_order =
      rejected_out_of_order_.load(std::memory_order_relaxed);
  stats.rejected_shutdown =
      rejected_shutdown_.load(std::memory_order_relaxed);
  stats.auth_failures = auth_failures_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.dispatch_mean_ms = dispatch_.MeanMs();
  stats.dispatch_p50_ms = dispatch_.Percentile(50.0);
  stats.dispatch_p95_ms = dispatch_.Percentile(95.0);
  stats.dispatch_p99_ms = dispatch_.Percentile(99.0);
  return stats;
}

}  // namespace net
}  // namespace causaltad
