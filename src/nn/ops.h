#ifndef CAUSALTAD_NN_OPS_H_
#define CAUSALTAD_NN_OPS_H_

#include <span>
#include <vector>

#include "nn/autograd.h"
#include "util/random.h"

namespace causaltad {
namespace nn {

// ---------------------------------------------------------------------------
// Differentiable operators. Shapes are rank-2 [rows, cols] unless stated.
// Every op propagates requires_grad from its inputs and installs a backward
// closure only when needed, so inference-time forwards are allocation-light.
// ---------------------------------------------------------------------------

/// Elementwise a + b. b may also be [1, a.cols] (or a 1-element scalar) and
/// is then broadcast across a's rows.
Var Add(const Var& a, const Var& b);

/// Elementwise a - b (same broadcast rules as Add).
Var Sub(const Var& a, const Var& b);

/// Elementwise (Hadamard) a * b; shapes must match exactly.
Var Mul(const Var& a, const Var& b);

/// a * scalar.
Var ScalarMul(const Var& a, float scalar);

/// a + scalar (elementwise).
Var ScalarAdd(const Var& a, float scalar);

/// Matrix product [m,k] x [k,n] -> [m,n].
Var MatMul(const Var& a, const Var& b);

/// x @ w + b. x:[m,k], w:[k,n], b:[1,n] (b may be undefined to skip bias).
Var Affine(const Var& x, const Var& w, const Var& b);

Var Tanh(const Var& a);
Var Sigmoid(const Var& a);
Var Relu(const Var& a);
Var Exp(const Var& a);
Var Neg(const Var& a);

/// Sum of all elements -> scalar [1,1].
Var Sum(const Var& a);

/// Mean of all elements -> scalar [1,1].
Var Mean(const Var& a);

/// Row-wise sum: [m,C] -> [m,1]. The batched twin of Sum for per-trip
/// reductions inside a minibatch (e.g. the GM-VSAE per-row log pdfs).
Var SumRows(const Var& a);

/// Stacks same-width blocks vertically: [r1,c],[r2,c].. -> [Σr,c].
Var ConcatRows(const std::vector<Var>& parts);

/// Concatenates same-height blocks horizontally: [m,c1],[m,c2].. -> [m,Σc].
Var ConcatCols(const std::vector<Var>& parts);

/// Gathers rows `ids` of `table` ([V,d]) -> [n,d]. This is the embedding
/// lookup; gradients scatter-add back into the table rows.
Var GatherRows(const Var& table, std::span<const int32_t> ids);

/// Row-wise softmax of [m,C] -> [m,C].
Var Softmax(const Var& a);

/// Sum over rows of the cross-entropy between row-softmax(logits) and the
/// integer targets: -Σ_i log softmax(logits_i)[target_i]. Returns scalar.
/// Numerically stabilized (max-shifted). targets.size() == logits.rows().
/// A negative target marks a masked (finished) row: it contributes zero
/// loss and zero gradient, which is how variable-length minibatches drop
/// rows that ended before the batch max. Non-empty `row_weights` scales row
/// i's loss (and gradient) by row_weights[i] — this is how deduplicated
/// minibatch rows stand in for their repeats with identical gradients.
Var SoftmaxCrossEntropy(const Var& logits, std::span<const int32_t> targets,
                        std::span<const float> row_weights = {});

/// Per-row softmax-CE over a per-row column subset of w — the batched,
/// tape-aware twin of GatherColsDot + SoftmaxCrossEntropy. Row i of h
/// ([R,d]) scores columns ids[offsets[i]..offsets[i+1]) of w ([d,C]) plus
/// bias b ([1,C], optional), and the CE target is position targets[i]
/// within that subset. Returns the scalar sum over rows. This is the
/// training path of the paper's road-constrained prediction: each decode
/// step's softmax runs only over the successors of the current segment, so
/// a step costs O(d·|successors|) on both the forward and backward passes
/// instead of O(d·|V|).
Var SubsetSoftmaxCrossEntropy(const Var& h, const Var& w, const Var& b,
                              std::span<const int32_t> ids,
                              std::span<const int32_t> offsets,
                              std::span<const int32_t> targets);

/// Logits restricted to a column subset: out[0,j] = h · W[:,ids[j]] + b[ids[j]].
/// h:[1,d], w:[d,C], b:[1,C] (optional). This powers the paper's
/// road-constrained prediction: the output softmax runs only over the
/// successors of the current road segment, so one decode step is
/// O(d·|neighbors|) instead of O(d·|V|).
Var GatherColsDot(const Var& h, const Var& w, const Var& b,
                  std::span<const int32_t> ids);

/// KL( N(mu, diag(exp(logvar))) || N(0, I) ) summed over all elements:
/// 0.5 Σ (mu² + exp(logvar) - 1 - logvar). Returns scalar. Non-empty
/// `row_weights` (size mu.rows()) scales each row's contribution, matching
/// the SoftmaxCrossEntropy dedup convention.
Var KlStandardNormal(const Var& mu, const Var& logvar,
                     std::span<const float> row_weights = {});

/// Reparameterization z = mu + exp(0.5·logvar) ⊙ eps with eps ~ N(0, I)
/// drawn from `rng` (stored, so backward is deterministic).
Var Reparameterize(const Var& mu, const Var& logvar, util::Rng* rng);

/// log Σ_j exp(a[0,j]) for a row vector [1,C] -> scalar.
Var LogSumExpRow(const Var& a);

/// Row-wise log Σ_j exp(a[i,j]): [m,C] -> [m,1]. Batched twin of
/// LogSumExpRow (used by the minibatched GM-VSAE mixture prior).
Var LogSumExpRows(const Var& a);

/// Convenience: wraps a constant (no-grad) tensor.
Var Constant(Tensor value);

// The value-level buffer kernels that used to live here (DotUnrolled,
// PackTranspose, MatMulPacked, AddMatMulTransposedA, SoftmaxNllRow,
// KlStandardNormalRow) moved to the runtime-dispatched backend tables in
// nn/kernels/kernels.h — call kernels::Active().<kernel> instead.

}  // namespace nn
}  // namespace causaltad

#endif  // CAUSALTAD_NN_OPS_H_
