#ifndef CAUSALTAD_OBS_METRICS_H_
#define CAUSALTAD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/latency_histogram.h"

namespace causaltad {
namespace obs {

/// Version stamped into every text exposition and JSON snapshot. Bump when
/// the exposition grammar (not the metric set) changes — scrapers key their
/// parsers on it.
inline constexpr int kExpositionVersion = 1;

/// Process-wide metrics switch. On (the default), every Counter/Gauge/
/// Histogram update runs; off, updates early-return after one relaxed load,
/// which is as close to "compiled out" as a runtime toggle gets — the
/// bench_fig6_online metrics A/B flips this around the streaming path.
/// Disabling freezes every registered value (stats snapshots read 0s for
/// anything counted while off), so production keeps it on.
bool Enabled();
void SetEnabled(bool on);

/// Ordered label set, e.g. {{"tenant", "t0"}, {"shard", "2"}}. Order is
/// preserved into the exposition; keep cardinality low (see
/// src/obs/README.md — labels multiply series, they are not a log).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter: one relaxed atomic increment on the hot path. Handles
/// come from Registry::GetCounter and stay valid for the registry's life.
class Counter {
 public:
  void Inc(int64_t n = 1) {
    if (Enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-write-wins instantaneous value (live sessions, generations, queue
/// depth). Add() for delta-tracked gauges.
class Gauge {
 public:
  void Set(int64_t v) {
    if (Enabled()) v_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (Enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Latency distribution over util::LatencyHistogram (quarter-octave
/// geometric buckets, lock-free Add). The exposition emits count, mean, and
/// p50/p95/p99. raw() exposes the underlying histogram for sinks that
/// record through a util::LatencyHistogram* (the batcher queue-wait path);
/// those writes bypass the Enabled() gate, so gate them at the sink.
class Histogram {
 public:
  void Observe(double ms) {
    if (Enabled()) h_.Add(ms);
  }
  util::LatencyHistogram* raw() { return &h_; }
  const util::LatencyHistogram* raw() const { return &h_; }
  int64_t count() const { return h_.TotalCount(); }
  double mean_ms() const { return h_.MeanMs(); }
  double percentile(double p) const { return h_.Percentile(p); }

 private:
  util::LatencyHistogram h_;
};

/// Name + label-set keyed registry of Counters, Gauges, and Histograms.
/// Get* registers on first use and returns the same stable handle for the
/// same (name, labels) afterwards; handles are the hot-path interface — the
/// registry lock is only taken at registration and export time.
///
/// Every component takes an injectable Registry* (null = Default()), so a
/// test hosting several backends in one process can give each its own
/// registry and a kStats scrape returns only that backend's series.
class Registry {
 public:
  /// The shared process-wide registry.
  static Registry* Default();

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  /// Versioned Prometheus-style text exposition:
  ///   # causaltad_metrics v1
  ///   name{key="value",...} value
  /// Histograms expand into name_count / name_mean_ms / name_p50_ms /
  /// name_p95_ms / name_p99_ms series. Lines are sorted by series name, so
  /// the output is diffable and the format is testable byte-for-byte.
  std::string ExpositionText() const;

  /// The same snapshot as one JSON object (for the periodic snapshot
  /// writer and ad-hoc dashboards).
  std::string JsonSnapshot() const;

  /// Registered series count (counters + gauges + histograms).
  int64_t series() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreateLocked(const std::string& name, const Labels& labels,
                            Kind kind);

  mutable std::mutex mu_;
  // Keyed by name + rendered labels; std::map keeps the exposition sorted.
  std::map<std::string, Entry> entries_;
};

/// Instance-owned counter mirrored into a registry series. The local atomic
/// is authoritative for value() and is NOT gated by Enabled(), so a
/// component's stats() snapshot stays scoped to that component — and stays
/// exact — even when several concurrent instances in one process share a
/// registry (Registry::Default()): the shared series accumulates across all
/// of them (what a fleet exposition wants), the local value does not.
class ScopedCounter {
 public:
  void Bind(Registry* registry, const std::string& name,
            const Labels& labels = {}) {
    c_ = registry->GetCounter(name, labels);
  }
  void Inc(int64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
    if (c_ != nullptr) c_->Inc(n);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
  Counter* c_ = nullptr;
};

/// Instance-owned gauge mirrored into a registry series. The local atomic
/// is the source of truth and is NOT gated by Enabled() — gauge values like
/// active-connection counts drive functional decisions (drain completion),
/// which must not change when metrics are toggled off. The registry mirror
/// is best-effort telemetry.
class ScopedGauge {
 public:
  void Bind(Registry* registry, const std::string& name,
            const Labels& labels = {}) {
    g_ = registry->GetGauge(name, labels);
  }
  void Set(int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    if (g_ != nullptr) g_->Set(v);
  }
  void Add(int64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    if (g_ != nullptr) g_->Add(d);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
  Gauge* g_ = nullptr;
};

/// Background thread writing Registry::JsonSnapshot() to `path` every
/// `interval_ms` (atomically: temp file + rename), plus once at shutdown.
/// FromEnv() starts one when CAUSALTAD_METRICS_JSON=<path> is set
/// (CAUSALTAD_METRICS_JSON_INTERVAL_MS overrides the 1000ms default) and
/// returns null otherwise — deployments opt in per process.
class PeriodicJsonWriter {
 public:
  PeriodicJsonWriter(const Registry* registry, std::string path,
                     double interval_ms);
  ~PeriodicJsonWriter();

  static std::unique_ptr<PeriodicJsonWriter> FromEnv(const Registry* registry);

  /// Snapshots written so far (tests poll this instead of sleeping).
  int64_t writes() const { return writes_.load(std::memory_order_acquire); }

 private:
  void Main();
  void WriteOnce();

  const Registry* registry_;
  std::string path_;
  double interval_ms_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> writes_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace causaltad

#endif  // CAUSALTAD_OBS_METRICS_H_
