// Streaming parity and serving-engine tests: every method's incremental
// OnlineScorer must reproduce Score(trip, k) for every prefix k (the
// contract in models/scorer.h), on both the fused incremental path and the
// forced rescoring reference path; serve::StreamingBatcher must reproduce
// the same scores under interleaved trip starts/ends, bursts, out-of-order
// completion, deadline admission, and row compaction.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "models/scorer.h"
#include "serve/streaming.h"

namespace causaltad {
namespace {

using core::CausalTad;
using core::CausalTadVariant;
using core::ScoreVariant;
using eval::BuildExperiment;
using eval::ExperimentData;
using eval::Scale;
using eval::XianConfig;
using models::SetOnlineRescoringForced;
using models::TrajectoryScorer;
using serve::StreamingBatcher;
using serve::StreamingOptions;
using serve::StreamingSession;

const ExperimentData& Data() {
  static const ExperimentData* data =
      new ExperimentData(BuildExperiment(XianConfig(Scale::kSmoke)));
  return *data;
}

/// One fitted scorer per method, shared across tests (fitting dominates
/// this binary's runtime).
TrajectoryScorer* Fitted(const std::string& name) {
  static std::map<std::string, std::unique_ptr<TrajectoryScorer>>* cache =
      new std::map<std::string, std::unique_ptr<TrajectoryScorer>>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    auto scorer = eval::MakeScorer(name, Data(), Scale::kSmoke);
    models::FitOptions options;
    options.epochs = 2;
    options.lr = 3e-3f;
    options.seed = 17;
    scorer->Fit(Data().train, options);
    it = cache->emplace(name, std::move(scorer)).first;
  }
  return it->second.get();
}

const CausalTad* FittedCausal() {
  return dynamic_cast<const CausalTad*>(Fitted("CausalTAD"));
}

/// Parity tolerance: scores are float32 sums over the prefix, so "within
/// 1e-6" has to be read relative to the score's magnitude (one ULP of a
/// float at 50.0 is already ~4e-6).
double Tol(double reference, double rel = 1e-6) {
  return rel * std::max(1.0, std::abs(reference));
}

std::vector<traj::Trip> ParityTrips() {
  std::vector<traj::Trip> trips = eval::Subsample(Data().id_test, 4, 7);
  const auto detours = eval::Subsample(Data().id_detour, 2, 8);
  trips.insert(trips.end(), detours.begin(), detours.end());
  return trips;
}

void ExpectOnlineParity(const TrajectoryScorer& scorer, double rel_tol) {
  for (const traj::Trip& trip : ParityTrips()) {
    auto session = scorer.BeginTrip(trip);
    for (int64_t k = 1; k <= trip.route.size(); ++k) {
      const double incremental =
          session->Update(trip.route.segments[k - 1]);
      const double reference = scorer.Score(trip, k);
      EXPECT_NEAR(incremental, reference, Tol(reference, rel_tol))
          << scorer.Name() << " k=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Per-method incremental parity (and the rescoring reference path).
// ---------------------------------------------------------------------------

class StreamingParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StreamingParityTest, UpdateMatchesScoreAtEveryPrefix) {
  ExpectOnlineParity(*Fitted(GetParam()), 1e-6);
}

TEST_P(StreamingParityTest, RescoringReferencePathMatchesToo) {
  SetOnlineRescoringForced(true);
  ExpectOnlineParity(*Fitted(GetParam()), 1e-9);
  SetOnlineRescoringForced(false);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, StreamingParityTest,
                         ::testing::Values("iBOAT", "SAE", "VSAE", "BetaVAE",
                                           "FactorVAE", "GM-VSAE", "DeepTEA",
                                           "CausalTAD"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::erase(name, '-');
                           return name;
                         });

TEST(StreamingVariantTest, AblationSessionsMatchVariantScores) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  for (const ScoreVariant variant :
       {ScoreVariant::kLikelihoodOnly, ScoreVariant::kScalingOnly}) {
    const CausalTadVariant view(causal, variant);
    ExpectOnlineParity(view, 1e-6);
  }
}

TEST(StreamingCheckpointTest, ScoreCheckpointsMatchesScore) {
  // Both the flattened base implementation (GM-VSAE) and CausalTad's
  // one-roll override.
  for (const char* name : {"GM-VSAE", "CausalTAD"}) {
    const TrajectoryScorer* scorer = Fitted(name);
    const auto trips = ParityTrips();
    std::vector<std::vector<int64_t>> checkpoints(trips.size());
    for (size_t i = 0; i < trips.size(); ++i) {
      const int64_t n = trips[i].route.size();
      checkpoints[i] = {1, std::max<int64_t>(1, n / 2), n, -1};
    }
    const auto scores = scorer->ScoreCheckpoints(trips, checkpoints);
    for (size_t i = 0; i < trips.size(); ++i) {
      ASSERT_EQ(scores[i].size(), checkpoints[i].size());
      for (size_t j = 0; j < checkpoints[i].size(); ++j) {
        const double reference = scorer->Score(trips[i], checkpoints[i][j]);
        EXPECT_NEAR(scores[i][j], reference, Tol(reference))
            << name << " trip=" << i << " k=" << checkpoints[i][j];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// StreamingBatcher: shared-state serving engine.
// ---------------------------------------------------------------------------

TEST(StreamingBatcherTest, InterleavedTripsMatchPerTripScores) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  StreamingBatcher batcher(causal);

  // Interleave: all trips start, points round-robin one at a time, trips
  // end as soon as their route is exhausted (shorter trips complete first —
  // out-of-order completion), stepping intermittently.
  std::vector<StreamingSession> sessions;
  for (const auto& trip : trips) sessions.push_back(batcher.Begin(trip));
  std::vector<int64_t> fed(trips.size(), 0);
  bool progress = true;
  int tick = 0;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < trips.size(); ++i) {
      if (fed[i] < trips[i].route.size()) {
        sessions[i].Push(trips[i].route.segments[fed[i]]);
        if (++fed[i] == trips[i].route.size()) sessions[i].End();
        progress = true;
      }
    }
    if (++tick % 3 == 0) batcher.Step();
  }
  batcher.Flush();
  EXPECT_EQ(batcher.queued_points(), 0);
  EXPECT_EQ(batcher.active_rows(), 0);  // every trip ended -> rows released

  for (size_t i = 0; i < trips.size(); ++i) {
    const std::vector<double> scores = sessions[i].Poll();
    ASSERT_EQ(static_cast<int64_t>(scores.size()), trips[i].route.size());
    for (size_t k = 0; k < scores.size(); ++k) {
      const double reference =
          causal->Score(trips[i], static_cast<int64_t>(k) + 1);
      EXPECT_NEAR(scores[k], reference, Tol(reference))
          << "trip=" << i << " k=" << k + 1;
    }
  }
}

TEST(StreamingBatcherTest, BurstsDrainInFeedOrderOnePointPerStep) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  const traj::Trip& trip = trips[0];
  ASSERT_GE(trip.route.size(), 3);
  StreamingBatcher batcher(causal);
  StreamingSession burst = batcher.Begin(trip);
  StreamingSession other = batcher.Begin(trips[1]);
  for (int k = 0; k < 3; ++k) burst.Push(trip.route.segments[k]);
  other.Push(trips[1].route.segments[0]);

  // One step advances each session by at most one point.
  EXPECT_EQ(batcher.Step(), 2);
  EXPECT_EQ(batcher.queued_points(), 2);
  EXPECT_EQ(batcher.Step(), 1);
  EXPECT_EQ(batcher.Step(), 1);
  EXPECT_EQ(batcher.Step(), 0);

  const std::vector<double> scores = burst.Poll();
  ASSERT_EQ(scores.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    const double reference = causal->Score(trip, k + 1);
    EXPECT_NEAR(scores[k], reference, Tol(reference));
  }
}

TEST(StreamingBatcherTest, VariantEnginesMatchVariantScores) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  for (const ScoreVariant variant :
       {ScoreVariant::kLikelihoodOnly, ScoreVariant::kScalingOnly}) {
    StreamingBatcher batcher(causal, variant, causal->lambda());
    std::vector<StreamingSession> sessions;
    for (const auto& trip : trips) sessions.push_back(batcher.Begin(trip));
    for (size_t i = 0; i < trips.size(); ++i) {
      for (const auto segment : trips[i].route.segments) {
        sessions[i].Push(segment);
      }
      sessions[i].End();
    }
    batcher.Flush();
    const CausalTadVariant view(causal, variant);
    for (size_t i = 0; i < trips.size(); ++i) {
      const std::vector<double> scores = sessions[i].Poll();
      ASSERT_EQ(static_cast<int64_t>(scores.size()), trips[i].route.size());
      for (size_t k = 0; k < scores.size(); ++k) {
        const double reference =
            view.Score(trips[i], static_cast<int64_t>(k) + 1);
        EXPECT_NEAR(scores[k], reference, Tol(reference))
            << "variant=" << view.Name() << " trip=" << i << " k=" << k + 1;
      }
    }
  }
}

TEST(StreamingBatcherTest, DeadlineBoundedAdmission) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  double now_ms = 0.0;
  StreamingOptions options;
  options.max_batch_rows = 4;
  options.max_delay_ms = 5.0;
  options.now_ms = [&now_ms] { return now_ms; };
  StreamingBatcher batcher(causal, options);

  // Two queued sessions: below the batch size and inside the deadline, so
  // nothing fires until the clock passes max_delay_ms.
  StreamingSession a = batcher.Begin(trips[0]);
  StreamingSession b = batcher.Begin(trips[1]);
  a.Push(trips[0].route.segments[0]);
  b.Push(trips[1].route.segments[0]);
  EXPECT_EQ(batcher.StepIfReady(), 0);
  now_ms = 4.9;
  EXPECT_EQ(batcher.StepIfReady(), 0);
  now_ms = 5.1;
  EXPECT_EQ(batcher.StepIfReady(), 2);

  // A full batch fires immediately, deadline not yet reached.
  std::vector<StreamingSession> more;
  for (int i = 0; i < 4; ++i) {
    more.push_back(batcher.Begin(trips[i + 2 < static_cast<int>(trips.size())
                                           ? i + 2
                                           : i % trips.size()]));
    more.back().Push(trips[0].route.segments[0]);
  }
  EXPECT_EQ(batcher.StepIfReady(), 4);
}

TEST(StreamingBatcherTest, BurstDeadlineCarriesOriginalEnqueueTime) {
  // Regression: a re-queued session used to get a fresh ready_since_
  // timestamp, so the tail of a k-point burst waited ~k·max_delay_ms. The
  // re-queue must carry the oldest pending point's original enqueue time:
  // once the burst is past the deadline, every remaining point drains on
  // consecutive StepIfReady calls without the clock advancing further.
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const traj::Trip& trip = trips[0];
  ASSERT_GE(trip.route.size(), 4);
  double now_ms = 0.0;
  StreamingOptions options;
  options.max_batch_rows = 64;
  options.max_delay_ms = 5.0;
  options.now_ms = [&now_ms] { return now_ms; };
  StreamingBatcher batcher(causal, options);

  StreamingSession session = batcher.Begin(trip);
  for (int k = 0; k < 4; ++k) session.Push(trip.route.segments[k]);
  EXPECT_EQ(batcher.StepIfReady(), 0);  // inside the deadline
  now_ms = 5.1;
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(batcher.StepIfReady(), 1) << "burst point " << k;
  }
  EXPECT_EQ(batcher.queued_points(), 0);

  // Wait-bound sweep: points arrive 1 ms apart, a pump ticks the clock in
  // 1 ms steps draining everything due; no point may be scored later than
  // max_delay_ms after its own enqueue time.
  StreamingSession sweep = batcher.Begin(trip);
  std::vector<double> pushed_at;
  size_t scored = 0;
  double max_wait = 0.0;
  const int64_t n = std::min<int64_t>(6, trip.route.size());
  for (int tick = 0; tick <= 20; ++tick) {
    now_ms = 5.1 + tick;
    if (static_cast<int64_t>(pushed_at.size()) < n) {
      sweep.Push(trip.route.segments[pushed_at.size()]);
      pushed_at.push_back(now_ms);
    }
    while (batcher.StepIfReady() > 0) {
    }
    const size_t total = scored + sweep.Poll().size();
    for (; scored < total; ++scored) {
      max_wait = std::max(max_wait, now_ms - pushed_at[scored]);
    }
    if (scored == static_cast<size_t>(n) &&
        static_cast<int64_t>(pushed_at.size()) == n) {
      break;
    }
  }
  EXPECT_EQ(scored, static_cast<size_t>(n));
  EXPECT_LE(max_wait, options.max_delay_ms + 1e-9);
}

TEST(StreamingBatcherTest, DeadlineSeesCarriedTimestampBehindFifoFront) {
  // A re-queued burst session sits at the BACK of the FIFO with an OLDER
  // carried timestamp, so ready_since_ is not monotone: the deadline must
  // watch the true minimum, not the FIFO front. Scenario: A pushes 2
  // points at t=0; B, C, D push one each at t=4.9; the batch-full fire
  // admits A, B, C and re-queues A behind D carrying t=0. At t=5.1 A's
  // second point is past the deadline even though the front (D, t=4.9) is
  // not — the step must fire.
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  ASSERT_GE(trips.size(), 4u);
  double now_ms = 0.0;
  StreamingOptions options;
  options.max_batch_rows = 3;
  options.max_delay_ms = 5.0;
  options.now_ms = [&now_ms] { return now_ms; };
  StreamingBatcher batcher(causal, options);

  StreamingSession a = batcher.Begin(trips[0]);
  a.Push(trips[0].route.segments[0]);
  a.Push(trips[0].route.segments[1]);
  now_ms = 4.9;
  StreamingSession b = batcher.Begin(trips[1]);
  StreamingSession c = batcher.Begin(trips[2]);
  StreamingSession d = batcher.Begin(trips[3]);
  b.Push(trips[1].route.segments[0]);
  c.Push(trips[2].route.segments[0]);
  d.Push(trips[3].route.segments[0]);
  EXPECT_EQ(batcher.StepIfReady(), 3);  // batch full: admits a, b, c
  now_ms = 5.1;
  EXPECT_EQ(batcher.StepIfReady(), 2);  // d AND a's carried t=0 point
  EXPECT_EQ(batcher.queued_points(), 0);
}

TEST(StreamingBatcherTest, EndedDrainedSessionsAreForgotten) {
  // Regression: an ended, fully-drained, fully-polled session was only
  // forgotten via a LATER Poll(), so fire-and-forget callers grew
  // sessions_ without bound.
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const traj::Trip& trip = trips[0];
  StreamingBatcher batcher(causal);

  for (int i = 0; i < 32; ++i) {
    StreamingSession session = batcher.Begin(trip);
    session.Push(trip.route.segments[0]);
    batcher.Flush();
    EXPECT_EQ(session.Poll().size(), 1u);
    session.End();  // nothing pending, nothing unpolled: forget NOW
  }
  EXPECT_EQ(batcher.tracked_sessions(), 0);

  // End before the final Poll: kept while scores are unpolled, forgotten
  // by the Poll that drains them.
  StreamingSession session = batcher.Begin(trip);
  session.Push(trip.route.segments[0]);
  session.End();
  batcher.Flush();
  EXPECT_EQ(batcher.tracked_sessions(), 1);
  EXPECT_EQ(session.Poll().size(), 1u);
  EXPECT_EQ(batcher.tracked_sessions(), 0);
}

TEST(StreamingBatcherTest, SdCacheInvalidatesOnRefitUnderLiveBatcher) {
  // Regression: after a re-Fit()/Load() the batcher kept serving cached
  // h0/base pairs encoded under the old weights. New sessions must adopt
  // the refreshed packed weights and match the refitted model's scores.
  const ExperimentData& data = Data();
  core::CausalTadConfig config;
  config.tg.emb_dim = 12;
  config.tg.hidden_dim = 16;
  config.tg.latent_dim = 8;
  config.rp.emb_dim = 8;
  config.rp.hidden_dim = 16;
  config.rp.latent_dim = 4;
  core::CausalTad model(&data.city.network, config);
  const auto train = eval::Subsample(data.train, 48, 5);
  models::FitOptions options;
  options.epochs = 1;
  options.lr = 3e-3f;
  options.seed = 11;
  model.Fit(train, options);

  StreamingBatcher batcher(&model);
  const traj::Trip& trip = data.id_test[0];
  {
    // Prime the SD cache under the first weights.
    StreamingSession session = batcher.Begin(trip);
    session.Push(trip.route.segments[0]);
    session.End();
    batcher.Flush();
    session.Poll();
  }

  options.seed = 12;  // different init -> different weights
  model.Fit(train, options);

  StreamingSession session = batcher.Begin(trip);
  for (const auto segment : trip.route.segments) session.Push(segment);
  session.End();
  batcher.Flush();
  const std::vector<double> scores = session.Poll();
  ASSERT_EQ(static_cast<int64_t>(scores.size()), trip.route.size());
  for (size_t k = 0; k < scores.size(); ++k) {
    const double reference = model.Score(trip, static_cast<int64_t>(k) + 1);
    EXPECT_NEAR(scores[k], reference, Tol(reference)) << "k=" << k + 1;
  }
}

TEST(StreamingBatcherTest, RowsRecycleAndCompactOnTripEnd) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  const traj::Trip& trip = trips[0];
  StreamingBatcher batcher(causal);

  std::vector<StreamingSession> sessions;
  for (int i = 0; i < 200; ++i) sessions.push_back(batcher.Begin(trip));
  EXPECT_EQ(batcher.active_rows(), 200);
  EXPECT_GE(batcher.capacity_rows(), 200);
  const int64_t high_water = batcher.capacity_rows();

  for (auto& session : sessions) {
    session.Push(trip.route.segments[0]);
  }
  batcher.Flush();
  for (auto& session : sessions) session.End();
  EXPECT_EQ(batcher.active_rows(), 0);
  // Row compaction gave the high-water capacity back.
  EXPECT_LT(batcher.capacity_rows(), high_water);
  EXPECT_LE(batcher.capacity_rows(), 64);

  // Rows are recycled: new sessions fit in the compacted matrix and still
  // score correctly.
  StreamingSession fresh = batcher.Begin(trip);
  fresh.Push(trip.route.segments[0]);
  fresh.Push(trip.route.segments[1]);
  batcher.Flush();
  const std::vector<double> scores = fresh.Poll();
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_NEAR(scores[1], causal->Score(trip, 2),
              Tol(causal->Score(trip, 2)));
}

TEST(StreamingBatcherTest, EightProducerSoakMatchesReference) {
  // The Step lock split runs the fused kernels outside the batcher mutex:
  // 8 producer threads push/end/poll their own sessions while two stepper
  // threads drive Step() concurrently. Every session must receive exactly
  // one score per pushed point, in order, matching Score(trip, k) — no
  // loss, duplication, or cross-session corruption under contention.
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  std::vector<traj::Trip> pool = eval::Subsample(Data().id_test, 8, 13);
  const auto detours = eval::Subsample(Data().id_detour, 4, 14);
  pool.insert(pool.end(), detours.begin(), detours.end());

  StreamingOptions options;
  options.max_batch_rows = 8;  // forces many partial, contended batches
  StreamingBatcher batcher(causal, options);

  constexpr int kProducers = 8;
  constexpr int kTripsPerProducer = 3;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);

  std::atomic<bool> done{false};
  std::atomic<bool> timed_out{false};
  std::vector<std::thread> steppers;
  for (int s = 0; s < 2; ++s) {
    steppers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (batcher.Step() == 0) std::this_thread::yield();
      }
      batcher.Flush();
    });
  }

  // results[p][t] = scores for producer p's t-th trip.
  std::vector<std::vector<std::vector<double>>> results(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      results[p].resize(kTripsPerProducer);
      for (int t = 0; t < kTripsPerProducer; ++t) {
        const traj::Trip& trip =
            pool[(p * kTripsPerProducer + t) % pool.size()];
        StreamingSession session = batcher.Begin(trip);
        for (int64_t k = 0; k < trip.route.size(); ++k) {
          session.Push(trip.route.segments[k]);
          if ((k & 3) == 0) std::this_thread::yield();
        }
        session.End();
        std::vector<double>& out = results[p][t];
        while (static_cast<int64_t>(out.size()) < trip.route.size()) {
          const std::vector<double> scores = session.Poll();
          out.insert(out.end(), scores.begin(), scores.end());
          if (scores.empty()) {
            if (std::chrono::steady_clock::now() > deadline) {
              timed_out.store(true);
              return;
            }
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  done.store(true, std::memory_order_release);
  for (std::thread& t : steppers) t.join();

  ASSERT_FALSE(timed_out.load()) << "scores never drained within 120s";
  EXPECT_EQ(batcher.tracked_sessions(), 0);
  EXPECT_EQ(batcher.active_rows(), 0);
  for (int p = 0; p < kProducers; ++p) {
    for (int t = 0; t < kTripsPerProducer; ++t) {
      const traj::Trip& trip =
          pool[(p * kTripsPerProducer + t) % pool.size()];
      const std::vector<double>& scores = results[p][t];
      ASSERT_EQ(static_cast<int64_t>(scores.size()), trip.route.size())
          << "producer " << p << " trip " << t;
      for (size_t k = 0; k < scores.size(); ++k) {
        const double reference =
            causal->Score(trip, static_cast<int64_t>(k) + 1);
        EXPECT_NEAR(scores[k], reference, Tol(reference))
            << "producer " << p << " trip " << t << " k=" << k + 1;
      }
    }
  }
}

}  // namespace
}  // namespace causaltad
