// Router-tier tests: consistent-hash placement parity across a multi-backend
// fleet, kill-a-backend failover with journaled prefix replay (fault soak),
// graceful drain migration, downstream resume rebuild through the router,
// health probing, and zero-downtime fleet-wide model swaps (RollSwap).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "models/scorer.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/router.h"
#include "net/server.h"
#include "serve/service.h"
#include "serve/streaming.h"
#include "util/logging.h"

namespace causaltad {
namespace {

using core::CausalTad;
using eval::BuildExperiment;
using eval::ExperimentData;
using eval::Scale;
using eval::XianConfig;
using net::Client;
using net::ClientOptions;
using net::FaultInjector;
using net::FaultOptions;
using net::Router;
using net::RouterBackend;
using net::RouterOptions;
using net::Server;
using net::ServerOptions;
using serve::ServiceOptions;
using serve::StreamingBatcher;
using serve::StreamingService;
using serve::StreamingSession;

const ExperimentData& Data() {
  static const ExperimentData* data =
      new ExperimentData(BuildExperiment(XianConfig(Scale::kSmoke)));
  return *data;
}

const CausalTad* FittedCausal() {
  static const models::TrajectoryScorer* scorer = [] {
    auto owned = eval::MakeScorer("CausalTAD", Data(), Scale::kSmoke);
    models::FitOptions options;
    options.epochs = 2;
    options.lr = 3e-3f;
    options.seed = 17;
    owned->Fit(Data().train, options);
    return owned.release();
  }();
  return dynamic_cast<const CausalTad*>(scorer);
}

// A second, differently-fitted model for hot-swap tests: same architecture,
// different weights, so old-vs-new scores are distinguishable.
const CausalTad* FittedCausalV2() {
  static const models::TrajectoryScorer* scorer = [] {
    auto owned = eval::MakeScorer("CausalTAD", Data(), Scale::kSmoke);
    models::FitOptions options;
    options.epochs = 3;
    options.lr = 2e-3f;
    options.seed = 99;
    owned->Fit(Data().train, options);
    return owned.release();
  }();
  return dynamic_cast<const CausalTad*>(scorer);
}

double Tol(double reference, double rel = 1e-6) {
  return rel * std::max(1.0, std::abs(reference));
}

std::vector<traj::Trip> ParityTrips() {
  std::vector<traj::Trip> trips = eval::Subsample(Data().id_test, 6, 7);
  const auto detours = eval::Subsample(Data().id_detour, 2, 8);
  trips.insert(trips.end(), detours.begin(), detours.end());
  return trips;
}

std::vector<std::vector<double>> BatcherReference(
    const CausalTad* causal, const std::vector<traj::Trip>& trips) {
  StreamingBatcher batcher(causal);
  std::vector<StreamingSession> sessions;
  for (const auto& trip : trips) sessions.push_back(batcher.Begin(trip));
  for (size_t i = 0; i < trips.size(); ++i) {
    for (const auto segment : trips[i].route.segments) {
      sessions[i].Push(segment);
    }
    sessions[i].End();
  }
  batcher.Flush();
  std::vector<std::vector<double>> scores(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) scores[i] = sessions[i].Poll();
  return scores;
}

void ExpectScoresMatch(const std::vector<double>& got,
                       const std::vector<double>& reference,
                       const std::string& label) {
  ASSERT_EQ(got.size(), reference.size()) << label;
  for (size_t k = 0; k < reference.size(); ++k) {
    EXPECT_NEAR(got[k], reference[k], Tol(reference[k]))
        << label << " k=" << k;
  }
}

// ---------------------------------------------------------------------------
// Cluster harness: N backend (service, server) pairs that can be killed
// mid-test; dialers consult the slot under a mutex so a killed backend is
// simply unreachable (exactly what a router sees after SIGKILL).
// ---------------------------------------------------------------------------

struct Backend {
  std::unique_ptr<StreamingService> service;
  std::unique_ptr<Server> server;
};

class Cluster {
 public:
  Cluster(int n, const CausalTad* model, bool with_resolver = false) {
    for (int i = 0; i < n; ++i) {
      auto backend = std::make_unique<Backend>();
      ServiceOptions sopts;
      sopts.num_shards = 2;
      sopts.pump = true;
      sopts.max_session_pending = 8;
      sopts.batcher.max_batch_rows = 16;
      sopts.batcher.max_delay_ms = 0.25;
      backend->service = std::make_unique<StreamingService>(model, sopts);
      ServerOptions oopts;
      oopts.network = &Data().city.network;
      if (with_resolver) {
        oopts.model_resolver = [](const std::string& tag) {
          return tag == "v2" ? FittedCausalV2() : nullptr;
        };
      }
      backend->server =
          std::make_unique<Server>(backend->service.get(), oopts);
      CAUSALTAD_CHECK(backend->server->Start().ok());
      backends_.push_back(std::move(backend));
    }
  }

  ~Cluster() {
    for (int i = 0; i < static_cast<int>(backends_.size()); ++i) Kill(i);
  }

  std::vector<RouterBackend> RouterBackends() {
    std::vector<RouterBackend> out;
    for (size_t i = 0; i < backends_.size(); ++i) {
      RouterBackend b;
      b.dialer = [this, i] {
        std::lock_guard<std::mutex> lock(mu_);
        if (backends_[i] == nullptr) return -1;
        return backends_[i]->server->AddLoopbackConnection();
      };
      out.push_back(std::move(b));
    }
    return out;
  }

  // Protocol-equivalent of SIGKILL: the transport dies first (no shutdown
  // rejects reach any client), then the serving state is destroyed.
  void Kill(int i) {
    std::unique_ptr<Backend> victim;
    {
      std::lock_guard<std::mutex> lock(mu_);
      victim = std::move(backends_[i]);
    }
    if (victim == nullptr) return;
    victim->server->Stop();
    victim->server.reset();
    victim->service->Shutdown();
    victim->service.reset();
  }

  bool Alive(int i) {
    std::lock_guard<std::mutex> lock(mu_);
    return backends_[i] != nullptr;
  }

  serve::ServiceStats ServiceStats(int i) {
    std::lock_guard<std::mutex> lock(mu_);
    CAUSALTAD_CHECK(backends_[i] != nullptr);
    return backends_[i]->service->stats();
  }

  // The live backend currently holding the most begun sessions (kill/drain
  // targets want a backend that actually owns traffic).
  int BusiestBackend() {
    int best = -1;
    int64_t most = -1;
    for (size_t i = 0; i < backends_.size(); ++i) {
      if (!Alive(static_cast<int>(i))) continue;
      const int64_t begun = ServiceStats(static_cast<int>(i)).sessions_begun;
      if (begun > most) {
        most = begun;
        best = static_cast<int>(i);
      }
    }
    return best;
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<Backend>> backends_;
};

RouterOptions FastRouterOptions() {
  RouterOptions options;
  options.upstream.timeout_ms = 15000.0;
  options.upstream.max_reconnect_attempts = 12;
  options.upstream.reconnect_base_ms = 2.0;
  options.upstream.reconnect_max_ms = 50.0;
  options.health_interval_ms = 10.0;
  options.health_failure_threshold = 2;
  options.health_timeout_ms = 500.0;
  options.idle_tick_ms = 5.0;
  options.drain_timeout_ms = 10000.0;
  return options;
}

void WaitForQuiesce(Router* router, double timeout_ms = 5000.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(
                            static_cast<int64_t>(timeout_ms));
  while (router->stats().connections_active > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// ---------------------------------------------------------------------------
// Placement parity.
// ---------------------------------------------------------------------------

// A plain client pointed at the router instead of a server sees identical
// scores: the router's consistent-hash fan-out across 3 backends is
// invisible downstream, and sessions actually spread across the fleet.
TEST(RouterTest, ParityAcrossThreeBackends) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);

  Cluster cluster(3, causal);
  Router router(cluster.RouterBackends(), FastRouterOptions());
  ASSERT_TRUE(router.Start().ok());
  {
    auto client = Client::FromFd(router.AddLoopbackConnection(), {});
    ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();
    std::vector<uint64_t> ids;
    for (const auto& trip : trips) {
      ids.push_back(client->Begin(trip.route.segments.front(),
                                  trip.route.segments.back(),
                                  trip.time_slot));
    }
    // Interleave pushes round-robin so several upstream legs are active at
    // once on the single downstream connection.
    size_t longest = 0;
    for (const auto& trip : trips) {
      longest = std::max(longest, trip.route.segments.size());
    }
    for (size_t k = 0; k < longest; ++k) {
      for (size_t i = 0; i < trips.size(); ++i) {
        if (k >= trips[i].route.segments.size()) continue;
        ASSERT_TRUE(client->Push(ids[i], trips[i].route.segments[k]).ok())
            << client->status().ToString();
      }
    }
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto scores = client->Finish(ids[i]);
      ASSERT_TRUE(scores.ok()) << scores.status().ToString();
      ExpectScoresMatch(*scores, reference[i],
                        "trip " + std::to_string(i));
    }
  }
  WaitForQuiesce(&router);
  EXPECT_EQ(router.stats().sessions_opened,
            static_cast<int64_t>(trips.size()));
  // 8 sessions over a 3-backend ring: expect real spread, not one hot spot.
  int backends_used = 0;
  for (int i = 0; i < 3; ++i) {
    if (cluster.ServiceStats(i).sessions_begun > 0) ++backends_used;
  }
  EXPECT_GE(backends_used, 2);
  router.Stop();
}

// ---------------------------------------------------------------------------
// Kill-a-backend failover soak.
// ---------------------------------------------------------------------------

// The acceptance soak: three backends, deterministic faults on every
// upstream leg, and the busiest backend is destroyed mid-stream. Every
// session it owned fails over to a live peer via journaled prefix replay;
// the downstream streams show exact parity (zero gaps, zero duplicates)
// and the router counted the failovers.
TEST(RouterTest, KillBackendMidStreamFailoverSoak) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);

  FaultOptions fault_options;
  fault_options.short_write_rate = 0.05;
  fault_options.delay_rate = 0.02;
  fault_options.delay_ms = 0.2;
  fault_options.seed = 20240612;
  FaultInjector faults(fault_options);

  Cluster cluster(3, causal);
  RouterOptions ropts = FastRouterOptions();
  ropts.upstream_fault = &faults;
  Router router(cluster.RouterBackends(), ropts);
  ASSERT_TRUE(router.Start().ok());
  {
    auto client = Client::FromFd(router.AddLoopbackConnection(), {});
    ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();
    std::vector<uint64_t> ids;
    for (const auto& trip : trips) {
      ids.push_back(client->Begin(trip.route.segments.front(),
                                  trip.route.segments.back(),
                                  trip.time_slot));
    }
    // First half of every trip lands while all three backends are up.
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto& segs = trips[i].route.segments;
      for (size_t k = 0; k < segs.size() / 2; ++k) {
        ASSERT_TRUE(client->Push(ids[i], segs[k]).ok())
            << client->status().ToString();
      }
    }
    // Barrier: a Poll round trip per session forces every pipelined Begin
    // and Push through its backend before the victim is chosen by load.
    // Polled scores are kept and re-joined with the Finish tail below.
    std::vector<std::vector<double>> streams(trips.size());
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto polled = client->Poll(ids[i]);
      ASSERT_TRUE(polled.ok()) << polled.status().ToString();
      streams[i] = *polled;
    }
    const int victim = cluster.BusiestBackend();
    ASSERT_GE(victim, 0);
    ASSERT_GT(cluster.ServiceStats(victim).sessions_begun, 0);
    cluster.Kill(victim);
    // Second half: pushes to the dead backend hit transport failures, the
    // legs recover onto peers, and the replayed prefixes keep parity.
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto& segs = trips[i].route.segments;
      for (size_t k = segs.size() / 2; k < segs.size(); ++k) {
        ASSERT_TRUE(client->Push(ids[i], segs[k]).ok())
            << client->status().ToString();
      }
    }
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto tail = client->Finish(ids[i]);
      ASSERT_TRUE(tail.ok()) << tail.status().ToString();
      streams[i].insert(streams[i].end(), tail->begin(), tail->end());
      ExpectScoresMatch(streams[i], reference[i],
                        "post-kill trip " + std::to_string(i));
    }
  }
  WaitForQuiesce(&router);
  const net::RouterStats stats = router.stats();
  EXPECT_GE(stats.failovers, 1) << "no leg failed over to a peer";
  EXPECT_GE(stats.upstream_reconnects, 1);
  EXPECT_EQ(stats.scores_forwarded, [&] {
    int64_t total = 0;
    for (const auto& r : reference) total += static_cast<int64_t>(r.size());
    return total;
  }());
  router.Stop();
}

// ---------------------------------------------------------------------------
// Graceful drain.
// ---------------------------------------------------------------------------

// DrainBackend moves every leg off the target via administrative migration
// (Client::Migrate through the failover dialer) while streams are live;
// scores stay exact and the drained backend is eligible again after
// UndrainBackend.
TEST(RouterTest, DrainMigratesLegsWithoutGaps) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);

  Cluster cluster(3, causal);
  Router router(cluster.RouterBackends(), FastRouterOptions());
  ASSERT_TRUE(router.Start().ok());
  {
    auto client = Client::FromFd(router.AddLoopbackConnection(), {});
    ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();
    std::vector<uint64_t> ids;
    for (const auto& trip : trips) {
      ids.push_back(client->Begin(trip.route.segments.front(),
                                  trip.route.segments.back(),
                                  trip.time_slot));
    }
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto& segs = trips[i].route.segments;
      for (size_t k = 0; k < segs.size() / 2; ++k) {
        ASSERT_TRUE(client->Push(ids[i], segs[k]).ok())
            << client->status().ToString();
      }
    }
    // Barrier: a Poll round trip per session forces every pipelined Begin
    // and Push through its backend before the victim is chosen by load —
    // otherwise a lagging handler leaves the "busiest" backend legless and
    // the drain completes vacuously. Polled scores are kept and re-joined
    // with the Finish tail below.
    std::vector<std::vector<double>> streams(trips.size());
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto polled = client->Poll(ids[i]);
      ASSERT_TRUE(polled.ok()) << polled.status().ToString();
      streams[i] = *polled;
    }
    const int victim = cluster.BusiestBackend();
    ASSERT_GE(victim, 0);
    ASSERT_GT(cluster.ServiceStats(victim).sessions_begun, 0);
    ASSERT_TRUE(router.DrainBackend(victim).ok());
    EXPECT_TRUE(router.BackendDraining(victim));
    const int64_t begun_at_drain =
        cluster.ServiceStats(victim).sessions_begun;
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto& segs = trips[i].route.segments;
      for (size_t k = segs.size() / 2; k < segs.size(); ++k) {
        ASSERT_TRUE(client->Push(ids[i], segs[k]).ok())
            << client->status().ToString();
      }
    }
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto tail = client->Finish(ids[i]);
      ASSERT_TRUE(tail.ok()) << tail.status().ToString();
      streams[i].insert(streams[i].end(), tail->begin(), tail->end());
      ExpectScoresMatch(streams[i], reference[i],
                        "drained trip " + std::to_string(i));
    }
    // Nothing new landed on the draining backend.
    EXPECT_EQ(cluster.ServiceStats(victim).sessions_begun, begun_at_drain);
    router.UndrainBackend(victim);
    EXPECT_FALSE(router.BackendDraining(victim));
  }
  WaitForQuiesce(&router);
  // Normally the idle tick carries the leg off the victim via an
  // administrative Migrate. On a starved box the leg's own timeout-driven
  // reconnect can get there first — its dialer also refuses draining
  // backends, so the drain still completes, counted as a failover instead.
  EXPECT_GE(router.stats().migrations + router.stats().failovers, 1);
  router.Stop();
}

// ---------------------------------------------------------------------------
// Downstream resume through the router.
// ---------------------------------------------------------------------------

// A reconnecting downstream client that loses its router transport resumes
// through a brand-new handler: the router rebuilds each session upstream
// from the client's full prefix replay and drops the already-delivered
// prefix, so the stream continues exactly at the high-water mark.
TEST(RouterTest, DownstreamResumeRebuildsUpstream) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);

  Cluster cluster(3, causal);
  Router router(cluster.RouterBackends(), FastRouterOptions());
  ASSERT_TRUE(router.Start().ok());
  {
    ClientOptions copts;
    copts.reconnect = true;
    copts.reconnect_base_ms = 1.0;
    copts.dialer = [&router] { return router.AddLoopbackConnection(); };
    auto client = Client::FromFd(router.AddLoopbackConnection(), copts);
    ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();
    std::vector<uint64_t> ids;
    for (const auto& trip : trips) {
      ids.push_back(client->Begin(trip.route.segments.front(),
                                  trip.route.segments.back(),
                                  trip.time_slot));
    }
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto& segs = trips[i].route.segments;
      for (size_t k = 0; k < segs.size() / 2; ++k) {
        ASSERT_TRUE(client->Push(ids[i], segs[k]).ok())
            << client->status().ToString();
      }
    }
    // Forced reconnect: a fresh downstream connection, Resume frames for
    // every session, fresh rebuilds on the ring.
    ASSERT_TRUE(client->Migrate().ok()) << client->status().ToString();
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto& segs = trips[i].route.segments;
      for (size_t k = segs.size() / 2; k < segs.size(); ++k) {
        ASSERT_TRUE(client->Push(ids[i], segs[k]).ok())
            << client->status().ToString();
      }
    }
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto scores = client->Finish(ids[i]);
      ASSERT_TRUE(scores.ok()) << scores.status().ToString();
      ExpectScoresMatch(*scores, reference[i],
                        "resumed trip " + std::to_string(i));
    }
  }
  WaitForQuiesce(&router);
  EXPECT_GE(router.stats().sessions_resumed,
            static_cast<int64_t>(trips.size()));
  router.Stop();
}

// ---------------------------------------------------------------------------
// Health probing.
// ---------------------------------------------------------------------------

// The health thread marks a destroyed backend dead after the configured
// consecutive-failure threshold, and new sessions keep placing on the
// survivors.
TEST(RouterTest, HealthProbesMarkKilledBackendDead) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  Cluster cluster(2, causal);
  Router router(cluster.RouterBackends(), FastRouterOptions());
  ASSERT_TRUE(router.Start().ok());

  cluster.Kill(1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (router.BackendAlive(1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_FALSE(router.BackendAlive(1));
  EXPECT_GE(router.stats().probe_failures, 2);
  EXPECT_EQ(router.stats().backends_dead, 1);

  // New sessions still place (on the survivor).
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);
  auto client = Client::FromFd(router.AddLoopbackConnection(), {});
  ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();
  const auto& trip = trips[0];
  const uint64_t id = client->Begin(trip.route.segments.front(),
                                    trip.route.segments.back(),
                                    trip.time_slot);
  for (const auto segment : trip.route.segments) {
    ASSERT_TRUE(client->Push(id, segment).ok())
        << client->status().ToString();
  }
  const auto scores = client->Finish(id);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  ExpectScoresMatch(*scores, reference[0], "survivor trip");
  router.Stop();
}

// ---------------------------------------------------------------------------
// Fleet-wide model swap.
// ---------------------------------------------------------------------------

// RollSwap on a single-backend fleet skips the drain: live sessions finish
// on the OLD model (the service's generation guarantee), and sessions begun
// after the swap score on the new one — both at exact parity.
TEST(RouterTest, RollSwapSingleBackendOldSessionsFinishOnOldModel) {
  const CausalTad* causal = FittedCausal();
  const CausalTad* causal_v2 = FittedCausalV2();
  ASSERT_NE(causal, nullptr);
  ASSERT_NE(causal_v2, nullptr);
  const auto trips = ParityTrips();
  const auto old_reference = BatcherReference(causal, trips);
  const auto new_reference = BatcherReference(causal_v2, trips);

  Cluster cluster(1, causal, /*with_resolver=*/true);
  Router router(cluster.RouterBackends(), FastRouterOptions());
  ASSERT_TRUE(router.Start().ok());
  {
    auto client = Client::FromFd(router.AddLoopbackConnection(), {});
    ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();
    const auto& trip = trips[0];
    const uint64_t pre = client->Begin(trip.route.segments.front(),
                                       trip.route.segments.back(),
                                       trip.time_slot);
    for (size_t k = 0; k < trip.route.segments.size() / 2; ++k) {
      ASSERT_TRUE(client->Push(pre, trip.route.segments[k]).ok());
    }
    ASSERT_TRUE(router.RollSwap("v2").ok());
    EXPECT_EQ(router.stats().swaps_rolled, 1);
    // The pre-swap session: never migrated, still pinned to the old
    // generation, finishes on the old weights.
    for (size_t k = trip.route.segments.size() / 2;
         k < trip.route.segments.size(); ++k) {
      ASSERT_TRUE(client->Push(pre, trip.route.segments[k]).ok());
    }
    const auto pre_scores = client->Finish(pre);
    ASSERT_TRUE(pre_scores.ok()) << pre_scores.status().ToString();
    // Never migrated, still pinned to the old generation, the pre-swap
    // session finishes entirely on the old weights. One timing caveat keeps
    // this robust on a starved box: if the upstream leg's timeout-driven
    // reconnect fires after the commit, the rebuild lands on the new
    // generation and the stream splices old->new at the delivered
    // high-water mark instead — the same at-most-one-switch guarantee the
    // fleet test pins down. Either way every score is exactly one model's
    // score and the stream never flaps back.
    ASSERT_EQ(pre_scores->size(), old_reference[0].size())
        << "pre-swap session: gapped or duplicated stream";
    bool switched = false;
    for (size_t k = 0; k < pre_scores->size(); ++k) {
      const double got = (*pre_scores)[k];
      const bool is_old =
          std::abs(got - old_reference[0][k]) <= Tol(old_reference[0][k]);
      const bool is_new =
          std::abs(got - new_reference[0][k]) <= Tol(new_reference[0][k]);
      ASSERT_TRUE(is_old || is_new)
          << "pre-swap k=" << k << ": score " << got
          << " matches neither model (old=" << old_reference[0][k]
          << " new=" << new_reference[0][k] << ")";
      if (switched && !is_new) {
        FAIL() << "pre-swap k=" << k << ": flapped back to the old model";
      }
      if (!is_old && is_new) switched = true;
    }
    // A post-swap session scores on the new weights.
    const uint64_t post = client->Begin(trip.route.segments.front(),
                                        trip.route.segments.back(),
                                        trip.time_slot);
    for (const auto segment : trip.route.segments) {
      ASSERT_TRUE(client->Push(post, segment).ok());
    }
    const auto post_scores = client->Finish(post);
    ASSERT_TRUE(post_scores.ok()) << post_scores.status().ToString();
    ExpectScoresMatch(*post_scores, new_reference[0], "post-swap session");
  }
  WaitForQuiesce(&router);
  router.Stop();
}

// RollSwap across a 2-backend fleet under live load: each backend is
// staged, drained, committed, undrained in turn. A mid-flight session
// either gets rebuilt by prefix replay on a committed peer (its stream is
// exactly old-model scores up to the pre-swap high-water mark, then
// new-model scores computed with full prefix context) or is re-adopted
// from a backend's detached table, where it stays pinned to the drained
// old generation and finishes entirely on the old weights — the service's
// sessions-never-split-models guarantee. Either way every score is EXACTLY
// one model's score for its position, the old->new switch happens at most
// once per session, and nothing is gapped or duplicated.
TEST(RouterTest, RollSwapFleetUnderLoadSpliceParity) {
  const CausalTad* causal = FittedCausal();
  const CausalTad* causal_v2 = FittedCausalV2();
  ASSERT_NE(causal, nullptr);
  ASSERT_NE(causal_v2, nullptr);
  const auto trips = ParityTrips();
  const auto old_reference = BatcherReference(causal, trips);
  const auto new_reference = BatcherReference(causal_v2, trips);

  Cluster cluster(2, causal, /*with_resolver=*/true);
  Router router(cluster.RouterBackends(), FastRouterOptions());
  ASSERT_TRUE(router.Start().ok());
  {
    auto client = Client::FromFd(router.AddLoopbackConnection(), {});
    ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();
    std::vector<uint64_t> ids;
    std::vector<size_t> half(trips.size());
    std::vector<std::vector<double>> delivered(trips.size());
    for (const auto& trip : trips) {
      ids.push_back(client->Begin(trip.route.segments.front(),
                                  trip.route.segments.back(),
                                  trip.time_slot));
    }
    // Push the first half and drain every score it produced, pinning each
    // session's delivered high-water mark to exactly half its points.
    for (size_t i = 0; i < trips.size(); ++i) {
      half[i] = trips[i].route.segments.size() / 2;
      for (size_t k = 0; k < half[i]; ++k) {
        ASSERT_TRUE(client->Push(ids[i], trips[i].route.segments[k]).ok());
      }
    }
    for (size_t i = 0; i < trips.size(); ++i) {
      while (delivered[i].size() < half[i]) {
        const auto polled = client->Poll(ids[i]);
        ASSERT_TRUE(polled.ok()) << polled.status().ToString();
        delivered[i].insert(delivered[i].end(), polled->begin(),
                            polled->end());
        if (polled->empty()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      ASSERT_EQ(delivered[i].size(), half[i]);
    }
    ASSERT_TRUE(router.RollSwap("v2").ok());
    EXPECT_EQ(router.stats().swaps_rolled, 2);
    // Second half: every session now lives on a v2 backend (the drains
    // rebuilt them by prefix replay, and the emit-skip kept the stream at
    // the high-water mark).
    for (size_t i = 0; i < trips.size(); ++i) {
      for (size_t k = half[i]; k < trips[i].route.segments.size(); ++k) {
        ASSERT_TRUE(client->Push(ids[i], trips[i].route.segments[k]).ok());
      }
    }
    int sessions_on_new_model = 0;
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto tail = client->Finish(ids[i]);
      ASSERT_TRUE(tail.ok()) << tail.status().ToString();
      delivered[i].insert(delivered[i].end(), tail->begin(), tail->end());
      ASSERT_EQ(delivered[i].size(), old_reference[i].size())
          << "trip " << i << ": gapped or duplicated stream";
      bool switched = false;
      for (size_t k = 0; k < delivered[i].size(); ++k) {
        const bool is_old =
            std::abs(delivered[i][k] - old_reference[i][k]) <=
            Tol(old_reference[i][k]);
        const bool is_new =
            std::abs(delivered[i][k] - new_reference[i][k]) <=
            Tol(new_reference[i][k]);
        ASSERT_TRUE(is_old || is_new)
            << "trip " << i << " k=" << k << ": score "
            << delivered[i][k] << " matches neither model (old="
            << old_reference[i][k] << " new=" << new_reference[i][k] << ")";
        if (k < half[i]) {
          // The pre-swap prefix was delivered before any drain: old model.
          EXPECT_TRUE(is_old) << "trip " << i << " k=" << k;
        }
        if (switched && !is_new) {
          FAIL() << "trip " << i << " k=" << k
                 << ": flapped back to the old model";
        }
        if (!is_old && is_new) switched = true;
      }
      if (switched) ++sessions_on_new_model;
    }
    // The trip set deterministically spans both legs, so at least one
    // session is rebuilt across the model boundary (spliced) rather than
    // re-adopted onto its old generation.
    EXPECT_GE(sessions_on_new_model, 1);
  }
  WaitForQuiesce(&router);
  const net::RouterStats stats = router.stats();
  // Drains normally move legs via administrative Migrate; a timeout-driven
  // reconnect racing the drain moves them as a failover instead.
  EXPECT_GE(stats.migrations + stats.failovers, 1);
  // Both backends committed the staged model.
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.ServiceStats(i).model_swaps, 1) << "backend " << i;
  }
  router.Stop();
}

}  // namespace
}  // namespace causaltad
