#ifndef CAUSALTAD_NET_SOCKET_IO_H_
#define CAUSALTAD_NET_SOCKET_IO_H_

#include <cstddef>
#include <cstdint>
#include <sys/types.h>

#include "util/status.h"

namespace causaltad {
namespace net {

class FaultConnection;

/// Outcome of one socket transfer attempt. Exactly one of these shapes:
///  * ok() && n >= 0            — n bytes moved (n == 0 on recv means EOF
///                                 only when peer_closed is set)
///  * ok() && would_block       — nothing moved, retry when ready
///  * peer_closed               — recv saw a clean EOF
///  * !ok()                     — hard error; error holds errno
struct IoResult {
  ssize_t n = 0;
  bool would_block = false;
  bool peer_closed = false;
  int error = 0;
  bool ok() const { return error == 0; }
};

/// One best-effort send(2): retries EINTR internally, reports
/// EAGAIN/EWOULDBLOCK via would_block instead of an error, never raises
/// SIGPIPE (MSG_NOSIGNAL). `fault` (nullable) may shorten, swallow,
/// duplicate, or kill the transfer — see net::FaultInjector.
///
/// This is THE send used by both net::Server and net::Client; partial
/// writes are normal (n < size) and the caller resumes from n.
IoResult SendSome(int fd, const uint8_t* data, size_t size,
                  FaultConnection* fault);

/// One best-effort recv(2): retries EINTR, reports would-block, flags EOF
/// via peer_closed. `fault` (nullable) may cap or kill the read.
IoResult RecvSome(int fd, uint8_t* buf, size_t size, FaultConnection* fault);

/// Sends the entire buffer, polling POLLOUT across EAGAIN and resuming
/// partial writes, for at most timeout_ms. This is the blocking-sender
/// wrapper (net::Client) — safe on non-blocking fds and tiny socket
/// buffers, unlike a bare send loop.
util::Status SendAll(int fd, const uint8_t* data, size_t size,
                     double timeout_ms, FaultConnection* fault);

}  // namespace net
}  // namespace causaltad

#endif  // CAUSALTAD_NET_SOCKET_IO_H_
