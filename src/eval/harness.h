#ifndef CAUSALTAD_EVAL_HARNESS_H_
#define CAUSALTAD_EVAL_HARNESS_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "models/scorer.h"

namespace causaltad {
namespace eval {

/// All method names of the paper's evaluation, in table order.
std::vector<std::string> BaselineNames();  // iBOAT .. DeepTEA
inline const char* kCausalTadName = "CausalTAD";

/// Constructs an untrained scorer by paper name ("iBOAT", "VSAE", "SAE",
/// "BetaVAE", "FactorVAE", "GM-VSAE", "DeepTEA", "CausalTAD"). Model dims
/// are sized for the given scale.
std::unique_ptr<models::TrajectoryScorer> MakeScorer(
    const std::string& name, const ExperimentData& data, Scale scale);

/// Training options per scale (epochs/lr tuned for the single-core bench).
models::FitOptions FitOptionsFor(Scale scale);

/// Trains `name` on data.train, or restores it from the on-disk cache
/// (directory from CAUSALTAD_CACHE_DIR, default ".causaltad_cache"). The
/// cache key encodes city, scale, and model, so the nine bench binaries
/// share one training run per model. Set CAUSALTAD_NO_CACHE=1 to disable.
std::unique_ptr<models::TrajectoryScorer> FitOrLoad(
    const std::string& name, const ExperimentData& data,
    const std::string& city_name, Scale scale);

/// Scores normals-vs-anomalies at an observed ratio (1.0 = offline).
/// The prefix length of trip t is ceil(ratio * |t|), at least 1.
EvalResult EvaluateCombo(const models::TrajectoryScorer& scorer,
                         const std::vector<traj::Trip>& normals,
                         const std::vector<traj::Trip>& anomalies,
                         double observed_ratio = 1.0);

/// Scores one set of trips at an observed ratio.
std::vector<double> ScoreSet(const models::TrajectoryScorer& scorer,
                             const std::vector<traj::Trip>& trips,
                             double observed_ratio);

/// Scores one set at several observed ratios in one pass: out[r][i] is trip
/// i's score at ratios[r] (prefix = ceil(ratio * |t|), at least 1). Goes
/// through ScoreCheckpoints, so CausalTAD computes a whole ratio sweep from
/// one incremental roll per trip instead of |ratios| re-scores — this is
/// what the fig6 bench drives.
std::vector<std::vector<double>> ScoreSetAtRatios(
    const models::TrajectoryScorer& scorer,
    const std::vector<traj::Trip>& trips, std::span<const double> ratios);

/// Markdown-ish fixed-width table printer used by all bench binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);
  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;

  static std::string Fmt(double v, int precision = 4);

 private:
  std::vector<std::string> columns_;
};

}  // namespace eval
}  // namespace causaltad

#endif  // CAUSALTAD_EVAL_HARNESS_H_
