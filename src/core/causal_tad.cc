#include "core/causal_tad.h"

#include <algorithm>
#include <cmath>

#include "nn/checkpoint.h"
#include "nn/modules.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace causaltad {
namespace core {

const char* ScoreVariantName(ScoreVariant variant) {
  switch (variant) {
    case ScoreVariant::kFull:
      return "CausalTAD";
    case ScoreVariant::kLikelihoodOnly:
      return "TG-VAE";
    case ScoreVariant::kScalingOnly:
      return "RP-VAE";
  }
  return "unknown";
}

/// Wrapper module so one checkpoint carries both VAEs.
struct CausalTad::Net : nn::Module {
  Net(const roadnet::RoadNetwork* network, const CausalTadConfig& cfg,
      util::Rng* rng)
      : nn::Module("causaltad"), tg(network, cfg.tg, rng), rp(cfg.rp, rng) {
    RegisterSubmodule(&tg);
    RegisterSubmodule(&rp);
  }
  TgVae tg;
  RpVae rp;
};

CausalTad::CausalTad(const roadnet::RoadNetwork* network,
                     const CausalTadConfig& config)
    : network_(network), config_(config) {
  CAUSALTAD_CHECK(network != nullptr);
  config_.tg.vocab = network->num_segments();
  config_.rp.vocab = network->num_segments();
  config_.rp.num_time_slots =
      config_.time_aware_scaling ? config_.num_time_slots : 0;
  util::Rng rng(0xCA05A1);
  net_ = std::make_unique<Net>(network, config_, &rng);
  tg_ = &net_->tg;
  rp_ = &net_->rp;
  RebuildServingCache();
}

CausalTad::~CausalTad() = default;

void CausalTad::Fit(const std::vector<traj::Trip>& trips,
                    const models::FitOptions& options) {
  CAUSALTAD_CHECK(!trips.empty());
  util::Rng rng(options.seed);
  std::vector<nn::Var> params = net_->Parameters();
  nn::Adam opt(params, {.lr = options.lr});

  const int64_t n = static_cast<int64_t>(trips.size());
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    util::Stopwatch watch;
    double epoch_loss = 0.0;
    if (options.per_trip_tape) {
      // Legacy path: one tape per trip, gradients accumulated.
      const std::vector<int64_t> order = rng.Permutation(n);
      int in_batch = 0;
      opt.ZeroGrad();
      for (const int64_t idx : order) {
        const traj::Trip& trip = trips[idx];
        // Joint objective of Eq. (9): L1(c,t) + L2(t).
        const nn::Var loss =
            nn::Add(tg_->Loss(trip, &rng),
                    rp_->Loss(trip.route.segments, &rng, trip.time_slot));
        epoch_loss += loss.value().Item();
        nn::Backward(loss);
        if (++in_batch == options.batch_size) {
          nn::ClipGradNorm(params, options.grad_clip);
          opt.Step();
          opt.ZeroGrad();
          in_batch = 0;
        }
      }
      if (in_batch > 0) {
        nn::ClipGradNorm(params, options.grad_clip);
        opt.Step();
        opt.ZeroGrad();
      }
    } else {
      // Batched path: length-sorted [B, hidden] minibatches through one
      // tape per optimizer step.
      struct BatchData {
        std::vector<const traj::Trip*> batch;
        std::vector<roadnet::SegmentId> rp_segments;
        std::vector<int32_t> rp_slots;
      };
      const auto fill = [&](const std::vector<int64_t>& indices,
                            BatchData* bd) {
        bd->batch.clear();
        bd->rp_segments.clear();
        bd->rp_slots.clear();
        for (const int64_t i : indices) {
          const traj::Trip& trip = trips[i];
          bd->batch.push_back(&trip);
          bd->rp_segments.insert(bd->rp_segments.end(),
                                 trip.route.segments.begin(),
                                 trip.route.segments.end());
          if (rp_->time_conditioned()) {
            bd->rp_slots.insert(bd->rp_slots.end(), trip.route.size(),
                                static_cast<int32_t>(trip.time_slot));
          }
        }
      };
      const std::vector<std::vector<int64_t>> batches =
          models::LengthSortedBatches(trips, options.batch_size, &rng);
      if (!options.data_parallel) {
        BatchData bd;
        for (const std::vector<int64_t>& indices : batches) {
          fill(indices, &bd);
          opt.ZeroGrad();
          // Joint objective of Eq. (9) summed over the minibatch:
          // Σ L1(c,t) + Σ L2(t), both sides on the same tape.
          const nn::Var loss =
              nn::Add(tg_->LossBatch(bd.batch, &rng),
                      rp_->LossBatch(bd.rp_segments, bd.rp_slots, &rng));
          epoch_loss += loss.value().Item();
          nn::Backward(loss);
          nn::ClipGradNorm(params, options.grad_clip);
          opt.Step();
        }
      } else {
        // Data-parallel: a group of W minibatches builds W independent
        // forward tapes concurrently (parameters are only read during the
        // forward pass), then the group's backward passes run serially in
        // minibatch order — gradient accumulation into the shared
        // parameters keeps one deterministic order no matter how many
        // workers ran — and a single clipped step consumes the summed
        // gradients. Each minibatch draws latent noise from its own Rng
        // keyed by the global batch index, so the trained model is
        // identical for any worker count at a fixed group width.
        const size_t workers = static_cast<size_t>(
            options.data_parallel_width > 0
                ? options.data_parallel_width
                : std::max(1, util::ParallelThreads()));
        std::vector<BatchData> data(workers);
        std::vector<nn::Var> losses(workers);
        for (size_t g = 0; g < batches.size(); g += workers) {
          const size_t gn = std::min(workers, batches.size() - g);
          for (size_t b = 0; b < gn; ++b) fill(batches[g + b], &data[b]);
          util::ParallelFor(
              static_cast<int64_t>(gn), static_cast<int>(gn),
              [&](int64_t begin, int64_t end) {
                for (int64_t b = begin; b < end; ++b) {
                  const uint64_t global_batch =
                      static_cast<uint64_t>(epoch) * batches.size() + g + b;
                  util::Rng brng(options.seed ^
                                 ((global_batch + 1) * 0x9E3779B97F4A7C15ULL));
                  losses[b] = nn::Add(
                      tg_->LossBatch(data[b].batch, &brng),
                      rp_->LossBatch(data[b].rp_segments, data[b].rp_slots,
                                     &brng));
                }
              });
          opt.ZeroGrad();
          for (size_t b = 0; b < gn; ++b) {
            epoch_loss += losses[b].value().Item();
            nn::Backward(losses[b]);
            losses[b] = nn::Var();  // release this tape before stepping
          }
          nn::ClipGradNorm(params, options.grad_clip);
          opt.Step();
        }
      }
    }
    if (options.verbose) {
      const double secs = watch.ElapsedSeconds();
      std::fprintf(stderr,
                   "[CausalTAD] epoch %d loss %.3f (%.2fs, %.0f trips/s%s)\n",
                   epoch, epoch_loss / trips.size(), secs,
                   trips.size() / std::max(secs, 1e-9),
                   options.per_trip_tape ? ", per-trip tape" : "");
    }
  }
  RebuildScalingTable();
}

void CausalTad::RebuildScalingTable() {
  scaling_table_ = ScalingTable::Build(*rp_, config_.rp.vocab,
                                       config_.scaling_samples,
                                       config_.scaling_seed);
  if (config_.center_scaling) scaling_table_.CenterInPlace();
  // Fit/Load changed the TG-VAE weights too; re-derive the serving cache.
  RebuildServingCache();
}

void CausalTad::RebuildServingCache() {
  tg_out_wt_ = std::make_shared<const std::vector<float>>(
      tg_->PackedOutWeightsTransposed());
  // Keep the int8 serving copies in sync with the fp32 weights. Only pay
  // the quantization pass when the switch is on; with it off the fp32 path
  // never consults the copies.
  if (nn::Int8EmbeddingsEnabled()) {
    tg_->RefreshQuantizedEmbeddings();
    rp_->RefreshQuantizedEmbeddings();
  }
}

double CausalTad::RpOnlyScore(const traj::Trip& trip,
                              int64_t prefix_len) const {
  const int slot = rp_->time_conditioned() ? trip.time_slot : 0;
  double total = 0.0;
  for (int64_t i = 0; i < prefix_len; ++i) {
    total += rp_->SegmentNll(trip.route.segments[i], slot);
  }
  return total;
}

double CausalTad::ScoreVariantLambda(const traj::Trip& trip,
                                     int64_t prefix_len, ScoreVariant variant,
                                     double lambda) const {
  const int64_t n = trip.route.size();
  if (prefix_len <= 0 || prefix_len > n) prefix_len = n;
  if (variant == ScoreVariant::kScalingOnly) {
    return RpOnlyScore(trip, prefix_len);
  }
  const TgVae::ScoreParts parts = tg_->Score(trip);
  double score = parts.PrefixScore(prefix_len);
  if (variant == ScoreVariant::kFull) {
    CAUSALTAD_CHECK(!scaling_table_.empty()) << "call Fit() or Load() first";
    const int slot = scaling_table_.num_slots() > 1 ? trip.time_slot : 0;
    for (int64_t i = 0; i < prefix_len; ++i) {
      score -=
          lambda * scaling_table_.log_scaling(trip.route.segments[i], slot);
    }
  }
  return score;
}

double CausalTad::Score(const traj::Trip& trip, int64_t prefix_len) const {
  return ScoreVariantLambda(trip, prefix_len, ScoreVariant::kFull,
                            config_.lambda);
}

std::vector<double> CausalTad::ScoreBatchVariantLambda(
    std::span<const traj::Trip> trips, std::span<const int64_t> prefix_lens,
    ScoreVariant variant, double lambda) const {
  const size_t batch = trips.size();
  std::vector<double> scores(batch, 0.0);
  if (batch == 0) return scores;

  // Clamp prefixes exactly like the per-trip path.
  std::vector<int64_t> prefixes(batch);
  for (size_t i = 0; i < batch; ++i) {
    const int64_t n = trips[i].route.size();
    int64_t p = i < prefix_lens.size() ? prefix_lens[i] : n;
    if (p <= 0 || p > n) p = n;
    prefixes[i] = p;
  }

  if (variant == ScoreVariant::kScalingOnly) {
    // One RP-VAE batch per departure slot (segments of same-slot trips are
    // scored together; slot is irrelevant without time conditioning).
    std::vector<std::vector<roadnet::SegmentId>> slot_segments;
    std::vector<std::vector<size_t>> slot_owners;
    std::vector<int> slot_of;  // dense slot index -> time slot value
    for (size_t i = 0; i < batch; ++i) {
      const int slot = rp_->time_conditioned() ? trips[i].time_slot : 0;
      size_t dense = 0;
      while (dense < slot_of.size() && slot_of[dense] != slot) ++dense;
      if (dense == slot_of.size()) {
        slot_of.push_back(slot);
        slot_segments.emplace_back();
        slot_owners.emplace_back();
      }
      for (int64_t j = 0; j < prefixes[i]; ++j) {
        slot_segments[dense].push_back(trips[i].route.segments[j]);
        slot_owners[dense].push_back(i);
      }
    }
    for (size_t dense = 0; dense < slot_of.size(); ++dense) {
      const std::vector<double> nll =
          rp_->SegmentNllBatch(slot_segments[dense], slot_of[dense]);
      for (size_t k = 0; k < nll.size(); ++k) {
        scores[slot_owners[dense][k]] += nll[k];
      }
    }
    return scores;
  }

  const std::vector<TgVae::ScoreParts> parts =
      tg_->ScoreBatch(trips, prefixes);
  for (size_t i = 0; i < batch; ++i) {
    scores[i] = parts[i].PrefixScore(prefixes[i]);
  }
  if (variant == ScoreVariant::kFull) {
    CAUSALTAD_CHECK(!scaling_table_.empty()) << "call Fit() or Load() first";
    for (size_t i = 0; i < batch; ++i) {
      const int slot =
          scaling_table_.num_slots() > 1 ? trips[i].time_slot : 0;
      for (int64_t j = 0; j < prefixes[i]; ++j) {
        scores[i] -=
            lambda * scaling_table_.log_scaling(trips[i].route.segments[j],
                                                slot);
      }
    }
  }
  return scores;
}

std::vector<double> CausalTad::ScoreBatch(
    std::span<const traj::Trip> trips,
    std::span<const int64_t> prefix_lens) const {
  return ScoreBatchVariantLambda(trips, prefix_lens, ScoreVariant::kFull,
                                 config_.lambda);
}

std::vector<std::vector<double>> CausalTad::ScoreCheckpointsVariantLambda(
    std::span<const traj::Trip> trips,
    std::span<const std::vector<int64_t>> checkpoints, ScoreVariant variant,
    double lambda) const {
  const size_t batch = trips.size();
  std::vector<std::vector<double>> out(batch);
  if (batch == 0) return out;

  // Clamp every checkpoint like Score does and find each trip's largest
  // prefix — the only length anything below has to be rolled to.
  std::vector<std::vector<int64_t>> ks(batch);
  std::vector<int64_t> max_k(batch, 0);
  for (size_t i = 0; i < batch; ++i) {
    const int64_t n = trips[i].route.size();
    const auto& raw = i < checkpoints.size() ? checkpoints[i]
                                             : std::vector<int64_t>{};
    ks[i].reserve(raw.size());
    for (int64_t k : raw) {
      if (k <= 0 || k > n) k = n;
      ks[i].push_back(k);
      max_k[i] = std::max(max_k[i], k);
    }
    // A trip with no checkpoints still occupies a ScoreBatch row; prefix 1
    // keeps its roll at zero decode steps (prefix 0 would mean full route).
    max_k[i] = std::max<int64_t>(max_k[i], 1);
    out[i].resize(ks[i].size());
  }

  if (variant == ScoreVariant::kScalingOnly) {
    // Per-position segment NLLs batched per departure slot, then every
    // checkpoint is a running prefix sum.
    for (size_t i = 0; i < batch; ++i) {
      const int slot = rp_->time_conditioned() ? trips[i].time_slot : 0;
      const std::vector<double> nll = rp_->SegmentNllBatch(
          std::span<const roadnet::SegmentId>(trips[i].route.segments)
              .first(max_k[i]),
          slot);
      std::vector<double> prefix(max_k[i] + 1, 0.0);
      for (int64_t p = 0; p < max_k[i]; ++p) {
        prefix[p + 1] = prefix[p] + nll[p];
      }
      for (size_t j = 0; j < ks[i].size(); ++j) out[i][j] = prefix[ks[i][j]];
    }
    return out;
  }

  // One [B, hidden] TG-VAE roll to each trip's largest checkpoint; every
  // checkpoint is then a PrefixScore read plus (for the full model) a
  // scaling prefix sum.
  const std::vector<TgVae::ScoreParts> parts = tg_->ScoreBatch(trips, max_k);
  const bool full = variant == ScoreVariant::kFull;
  if (full) {
    CAUSALTAD_CHECK(!scaling_table_.empty()) << "call Fit() or Load() first";
  }
  for (size_t i = 0; i < batch; ++i) {
    std::vector<double> scaling_prefix;
    if (full) {
      const int slot = scaling_table_.num_slots() > 1 ? trips[i].time_slot : 0;
      scaling_prefix.assign(max_k[i] + 1, 0.0);
      for (int64_t p = 0; p < max_k[i]; ++p) {
        scaling_prefix[p + 1] =
            scaling_prefix[p] +
            scaling_table_.log_scaling(trips[i].route.segments[p], slot);
      }
    }
    for (size_t j = 0; j < ks[i].size(); ++j) {
      double score = parts[i].PrefixScore(ks[i][j]);
      if (full) score -= lambda * scaling_prefix[ks[i][j]];
      out[i][j] = score;
    }
  }
  return out;
}

std::vector<std::vector<double>> CausalTad::ScoreCheckpoints(
    std::span<const traj::Trip> trips,
    std::span<const std::vector<int64_t>> checkpoints) const {
  return ScoreCheckpointsVariantLambda(trips, checkpoints,
                                       ScoreVariant::kFull, config_.lambda);
}

CausalTad::SegmentDecomposition CausalTad::Decompose(
    const traj::Trip& trip) const {
  SegmentDecomposition out;
  const TgVae::ScoreParts parts = tg_->Score(trip);
  out.sd_nll = parts.sd_nll;
  out.kl = parts.kl;
  out.step_nll = parts.step_nll;
  const int slot = scaling_table_.num_slots() > 1 ? trip.time_slot : 0;
  const std::vector<double> centered = scaling_table_.Centered(slot);
  out.log_scaling.reserve(trip.route.size());
  out.centered_scaling.reserve(trip.route.size());
  for (const roadnet::SegmentId s : trip.route.segments) {
    out.log_scaling.push_back(scaling_table_.log_scaling(s, slot));
    out.centered_scaling.push_back(centered[s]);
  }
  return out;
}

namespace {

/// O(1)-per-segment online session (paper §V-D): per update, one *fused*
/// no-grad GRU step over the carried [1, hidden] row, one successor-masked
/// softmax read off the transposed output weights, and one scaling-table
/// lookup. With a null `table` (or λ = 0) this is the TG-VAE-only session.
class CausalTadOnlineSession : public models::OnlineScorer {
 public:
  CausalTadOnlineSession(const TgVae* tg,
                         std::shared_ptr<const std::vector<float>> wt,
                         const ScalingTable* table, double lambda,
                         roadnet::SegmentId source,
                         roadnet::SegmentId destination, int slot)
      : tg_(tg),
        wt_(std::move(wt)),
        table_(table),
        lambda_(lambda),
        slot_(slot) {
    const TgVae::TripContext ctx = tg->BeginTrip(source, destination);
    base_ = ctx.sd_nll + ctx.kl;
    hidden_ = ctx.h0.value();
  }

  double Update(roadnet::SegmentId segment) override {
    if (has_last_) {
      nll_ += tg_->StepNllFused(last_, segment, &hidden_, wt_->data());
    }
    if (table_ != nullptr) scaling_ += table_->log_scaling(segment, slot_);
    last_ = segment;
    has_last_ = true;
    return base_ + nll_ - lambda_ * scaling_;
  }

 private:
  const TgVae* tg_;
  // Shared with CausalTad's serving cache; keeps the transposed weights
  // alive even if the model is re-fitted while this session streams.
  std::shared_ptr<const std::vector<float>> wt_;
  const ScalingTable* table_;
  double lambda_;
  int slot_ = 0;
  double base_ = 0.0;
  nn::Tensor hidden_;  // [1, hidden], advanced in place
  roadnet::SegmentId last_ = roadnet::kInvalidSegment;
  bool has_last_ = false;
  double nll_ = 0.0;
  double scaling_ = 0.0;
};

/// Incremental RP-VAE-only session: one per-segment ELBO per update, on the
/// no-grad batched path (batch of one).
class RpOnlineSession : public models::OnlineScorer {
 public:
  RpOnlineSession(const RpVae* rp, int slot) : rp_(rp), slot_(slot) {}

  double Update(roadnet::SegmentId segment) override {
    total_ += rp_->SegmentNllBatch(
        std::span<const roadnet::SegmentId>(&segment, 1), slot_)[0];
    return total_;
  }

 private:
  const RpVae* rp_;
  int slot_ = 0;
  double total_ = 0.0;
};

}  // namespace

std::unique_ptr<models::OnlineScorer> CausalTad::BeginTripVariant(
    const traj::Trip& trip, ScoreVariant variant, double lambda) const {
  CAUSALTAD_CHECK(!trip.route.empty());
  const int rp_slot = rp_->time_conditioned() ? trip.time_slot : 0;
  switch (variant) {
    case ScoreVariant::kScalingOnly:
      return std::make_unique<RpOnlineSession>(rp_, rp_slot);
    case ScoreVariant::kLikelihoodOnly:
      return std::make_unique<CausalTadOnlineSession>(
          tg_, tg_out_wt_, nullptr, 0.0, trip.route.segments.front(),
          trip.route.segments.back(), 0);
    case ScoreVariant::kFull:
      break;
  }
  CAUSALTAD_CHECK(!scaling_table_.empty()) << "call Fit() or Load() first";
  const int slot = scaling_table_.num_slots() > 1 ? trip.time_slot : 0;
  return std::make_unique<CausalTadOnlineSession>(
      tg_, tg_out_wt_, &scaling_table_, lambda,
      trip.route.segments.front(), trip.route.segments.back(), slot);
}

std::unique_ptr<models::OnlineScorer> CausalTad::BeginTrip(
    const traj::Trip& trip) const {
  if (models::OnlineRescoringForced()) {
    return TrajectoryScorer::BeginTrip(trip);
  }
  return BeginTripVariant(trip, ScoreVariant::kFull, config_.lambda);
}

util::Status CausalTad::Save(const std::string& path) const {
  return nn::SaveCheckpoint(path, *net_);
}

util::Status CausalTad::Load(const std::string& path) {
  CAUSALTAD_RETURN_IF_ERROR(nn::LoadCheckpoint(path, net_.get()));
  // The scaling table is derived state; rebuild it from the restored RP-VAE.
  RebuildScalingTable();
  return util::Status::Ok();
}

}  // namespace core
}  // namespace causaltad
