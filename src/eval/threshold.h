#ifndef CAUSALTAD_EVAL_THRESHOLD_H_
#define CAUSALTAD_EVAL_THRESHOLD_H_

#include <cstdint>
#include <span>
#include <vector>

namespace causaltad {
namespace eval {

/// Deployment-side utilities: AUC metrics rank score distributions, but a
/// production detector must pick an operating point. These helpers
/// calibrate an alarm threshold on held-out *normal* scores and evaluate
/// the resulting detector.

/// Threshold whose false-positive rate on `normal_scores` is at most
/// `target_fpr` (e.g. 0.05 → the 95th percentile of normal scores).
/// Scores above the threshold are flagged anomalous.
double ThresholdAtFpr(std::span<const double> normal_scores,
                      double target_fpr);

/// Confusion-matrix summary of a thresholded detector.
struct DetectionReport {
  double threshold = 0.0;
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t true_negatives = 0;
  int64_t false_negatives = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
  double FalsePositiveRate() const;
};

/// Applies `threshold` to the two score sets.
DetectionReport EvaluateAtThreshold(std::span<const double> normal_scores,
                                    std::span<const double> anomaly_scores,
                                    double threshold);

}  // namespace eval
}  // namespace causaltad

#endif  // CAUSALTAD_EVAL_THRESHOLD_H_
