// AVX2+FMA backend: same generic source as baseline, compiled with
// -mavx2 -mfma (set per-file in CMakeLists.txt). Only referenced after a
// CPUID check, so the binary still loads on older hosts.

#define CAUSALTAD_KERNELS_NS avx2
#define CAUSALTAD_KERNELS_NAME "avx2"
#define CAUSALTAD_KERNELS_ISA ::causaltad::nn::kernels::Isa::kAvx2
#define CAUSALTAD_KERNELS_LANES 8

#include "nn/kernels/kernel_impl.inc"
