#include "serve/streaming.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace causaltad {
namespace serve {
namespace {

uint64_t SdKey(roadnet::SegmentId s, roadnet::SegmentId d) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(s)) << 32) |
         static_cast<uint32_t>(d);
}

}  // namespace

void StreamingSession::Push(roadnet::SegmentId segment) {
  batcher_->Push(id_, segment);
}

void StreamingSession::End() { batcher_->End(id_); }

std::vector<double> StreamingSession::Poll() { return batcher_->Poll(id_); }

StreamingBatcher::StreamingBatcher(const core::CausalTad* model,
                                   StreamingOptions options)
    : StreamingBatcher(model, core::ScoreVariant::kFull, model->lambda(),
                       std::move(options)) {}

StreamingBatcher::StreamingBatcher(const core::CausalTad* model,
                                   core::ScoreVariant variant, double lambda,
                                   StreamingOptions options)
    : model_(model),
      tg_(&model->tg_vae()),
      rp_(&model->rp_vae()),
      variant_(variant),
      lambda_(lambda),
      options_(std::move(options)) {
  CAUSALTAD_CHECK(model != nullptr);
  CAUSALTAD_CHECK_GT(options_.max_batch_rows, 0);
  if (variant_ == core::ScoreVariant::kFull) {
    CAUSALTAD_CHECK(!model_->scaling_table().empty())
        << "call Fit() or Load() before serving the full score";
  }
  if (variant_ != core::ScoreVariant::kScalingOnly) {
    wt_ = model_->packed_out_weights();
  }
}

double StreamingBatcher::Now() const {
  if (options_.now_ms) return options_.now_ms();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t StreamingBatcher::AllocRowLocked() {
  const int64_t hd = tg_->config().hidden_dim;
  if (free_rows_.empty()) {
    const int64_t grown = std::max<int64_t>(16, capacity_ * 2);
    states_.resize(grown * hd, 0.0f);
    for (int64_t r = grown - 1; r >= capacity_; --r) free_rows_.push_back(r);
    capacity_ = grown;
  }
  const int64_t row = free_rows_.back();
  free_rows_.pop_back();
  return row;
}

void StreamingBatcher::ReleaseRowLocked(Session* session) {
  if (session->row < 0) return;
  free_rows_.push_back(session->row);
  session->row = -1;

  // Row compaction on trip end: when the matrix is mostly free, move the
  // surviving rows to the front of a smaller matrix so the batched gathers
  // stay dense and the high-water capacity is given back.
  const int64_t live =
      capacity_ - static_cast<int64_t>(free_rows_.size());
  if (capacity_ <= 64 || live * 4 > capacity_) return;
  const int64_t hd = tg_->config().hidden_dim;
  const int64_t shrunk = std::max<int64_t>(16, live * 2);
  std::vector<float> compact(shrunk * hd, 0.0f);
  int64_t next = 0;
  for (auto& [id, s] : sessions_) {
    if (s.row < 0) continue;
    std::copy(states_.begin() + s.row * hd, states_.begin() + (s.row + 1) * hd,
              compact.begin() + next * hd);
    s.row = next++;
  }
  CAUSALTAD_CHECK_EQ(next, live);
  states_ = std::move(compact);
  capacity_ = shrunk;
  free_rows_.clear();
  for (int64_t r = shrunk - 1; r >= live; --r) free_rows_.push_back(r);
}

void StreamingBatcher::RefreshWeightsLocked() {
  if (variant_ == core::ScoreVariant::kScalingOnly) return;
  std::shared_ptr<const std::vector<float>> current =
      model_->packed_out_weights();
  if (current.get() == wt_.get()) return;
  // A re-Fit()/Load() rebuilt the packed weights: the cached h0/base pairs
  // were encoded under the old ones, so they would silently mix weight
  // generations into new sessions' scores.
  wt_ = std::move(current);
  sd_cache_.clear();
}

SessionId StreamingBatcher::BeginSession(roadnet::SegmentId source,
                                         roadnet::SegmentId destination,
                                         int time_slot) {
  return BeginSessionAt(source, destination, time_slot, /*emit_skip=*/0);
}

SessionId StreamingBatcher::BeginSessionAt(roadnet::SegmentId source,
                                           roadnet::SegmentId destination,
                                           int time_slot, int64_t emit_skip) {
  std::lock_guard<std::mutex> lock(mu_);
  RefreshWeightsLocked();
  const SessionId id = next_id_++;
  Session& s = sessions_[id];
  s.emit_skip = std::max<int64_t>(emit_skip, 0);
  s.rp_slot = rp_->time_conditioned() ? time_slot : 0;
  if (variant_ == core::ScoreVariant::kScalingOnly) return id;

  s.table_slot = variant_ == core::ScoreVariant::kFull &&
                         model_->scaling_table().num_slots() > 1
                     ? time_slot
                     : 0;
  // SD-pair context cache: one posterior/h0/sd_nll+kl per unique pair.
  const uint64_t key = SdKey(source, destination);
  auto it = sd_cache_.find(key);
  if (it == sd_cache_.end()) {
    if (static_cast<int64_t>(sd_cache_.size()) >=
        options_.sd_cache_capacity) {
      sd_cache_.clear();
    }
    const core::TgVae::TripContext ctx = tg_->BeginTrip(source, destination);
    SdContext cached;
    cached.base = ctx.sd_nll + ctx.kl;
    const float* h0 = ctx.h0.value().data();
    cached.h0.assign(h0, h0 + tg_->config().hidden_dim);
    it = sd_cache_.emplace(key, std::move(cached)).first;
  }
  s.base = it->second.base;
  s.row = AllocRowLocked();
  std::copy(it->second.h0.begin(), it->second.h0.end(),
            states_.begin() + s.row * tg_->config().hidden_dim);
  return id;
}

StreamingSession StreamingBatcher::Begin(const traj::Trip& trip) {
  CAUSALTAD_CHECK(!trip.route.empty());
  return StreamingSession(
      this, BeginSession(trip.route.segments.front(),
                         trip.route.segments.back(), trip.time_slot));
}

void StreamingBatcher::Push(SessionId id, roadnet::SegmentId segment) {
  std::lock_guard<std::mutex> lock(mu_);
  PushLocked(id, segment, /*max_session_pending=*/0, /*max_queued_points=*/0,
             /*trace_id=*/0);
}

PushStatus StreamingBatcher::TryPush(SessionId id, roadnet::SegmentId segment,
                                     int64_t max_session_pending,
                                     int64_t max_queued_points,
                                     uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  return PushLocked(id, segment, max_session_pending, max_queued_points,
                    trace_id);
}

PushStatus StreamingBatcher::PushLocked(SessionId id,
                                        roadnet::SegmentId segment,
                                        int64_t max_session_pending,
                                        int64_t max_queued_points,
                                        uint64_t trace_id) {
  auto it = sessions_.find(id);
  CAUSALTAD_CHECK(it != sessions_.end()) << "unknown session " << id;
  CAUSALTAD_CHECK(!it->second.ended) << "session " << id << " already ended";
  if (max_queued_points > 0 && queued_points_ >= max_queued_points) {
    return PushStatus::kShardFull;
  }
  if (max_session_pending > 0 &&
      static_cast<int64_t>(it->second.pending.size()) >=
          max_session_pending) {
    return PushStatus::kSessionFull;
  }
  const double now = Now();
  it->second.pending.push_back({segment, now, trace_id});
  ++queued_points_;
  if (!it->second.in_ready) {
    it->second.in_ready = true;
    // Oldest pending point's time, not this push's: with the session in
    // flight elsewhere, a leftover burst point may be older than we are.
    ReadyPushLocked(id, it->second.pending.front().enqueued_ms);
  }
  return PushStatus::kAccepted;
}

void StreamingBatcher::ReadyPushLocked(SessionId id, double since) {
  ready_.push_back(id);
  ready_since_.push_back(since);
  // Monotonic min-queue: drop dominated suffix entries so ready_min_ stays
  // non-decreasing with the running minimum at the front, O(1) amortized.
  while (!ready_min_.empty() && ready_min_.back() > since) {
    ready_min_.pop_back();
  }
  ready_min_.push_back(since);
}

double StreamingBatcher::ReadyPopLocked() {
  const double since = ready_since_.front();
  ready_since_.pop_front();
  if (!ready_min_.empty() && ready_min_.front() == since) {
    ready_min_.pop_front();
  }
  ready_.pop_front();
  return since;
}

void StreamingBatcher::End(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  CAUSALTAD_CHECK(it != sessions_.end()) << "unknown session " << id;
  it->second.ended = true;
  // An in-flight session keeps its row until the commit writes the advanced
  // state back and emits the score; the commit then releases it.
  if (it->second.pending.empty() && !it->second.in_flight) {
    ReleaseRowLocked(&it->second);
  }
  // A fire-and-forget caller (End with everything already polled) would
  // otherwise leave the entry behind forever — Poll() was the only
  // forgetting path.
  MaybeForgetLocked(id);
}

std::vector<double> StreamingBatcher::Poll(SessionId id) {
  return Poll(id, nullptr);
}

std::vector<double> StreamingBatcher::Poll(SessionId id, bool* forgotten) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  // A fully-drained ended session is forgotten by its last Poll; polling
  // again is normal for a periodic pump loop and just yields nothing.
  if (it == sessions_.end()) {
    if (forgotten != nullptr) *forgotten = true;
    return {};
  }
  std::vector<double> scores = std::move(it->second.scores);
  it->second.scores.clear();
  MaybeForgetLocked(id);
  if (forgotten != nullptr) {
    *forgotten = sessions_.find(id) == sessions_.end();
  }
  return scores;
}

double StreamingBatcher::max_delay_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.max_delay_ms;
}

void StreamingBatcher::set_max_delay_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.max_delay_ms = ms;
}

void StreamingBatcher::MaybeForgetLocked(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  const Session& s = it->second;
  if (s.ended && s.pending.empty() && s.scores.empty() && !s.in_ready &&
      !s.in_flight) {
    CAUSALTAD_CHECK_EQ(s.row, -1);
    sessions_.erase(it);
  }
}

int64_t StreamingBatcher::Step() {
  // Three-phase step: admission and commit hold the mutex, the kernel pass
  // between them does not — concurrent producers keep pushing (and other
  // Steps keep admitting disjoint sessions) while this batch computes.
  BatchPlan plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    AdmitLocked(&plan);
  }
  if (plan.admitted.empty()) return 0;
  ComputePhase(&plan);
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked(plan);
}

int64_t StreamingBatcher::StepIfReady() {
  BatchPlan plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ready_.empty()) return 0;
    // Deadline on the OLDEST waiting point anywhere in the queue (the
    // min-queue front), not the FIFO front: re-queued burst sessions sit at
    // the back with older carried timestamps.
    if (static_cast<int64_t>(ready_.size()) < options_.max_batch_rows &&
        Now() - ready_min_.front() < options_.max_delay_ms) {
      return 0;
    }
    AdmitLocked(&plan);
  }
  if (plan.admitted.empty()) return 0;
  ComputePhase(&plan);
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked(plan);
}

void StreamingBatcher::ComputePhase(BatchPlan* plan) const {
  // Span timing only when this batch carries a traced point — the untraced
  // fast path runs the kernels with zero extra clock reads.
  bool traced = false;
  if (options_.tracer != nullptr) {
    for (const uint64_t id : plan->trace_ids) traced |= id != 0;
  }
  if (!traced) {
    ComputeUnlocked(plan);
    return;
  }
  plan->compute_start_ms = Now();
  ComputeUnlocked(plan);
  plan->compute_dur_ms = Now() - plan->compute_start_ms;
}

void StreamingBatcher::Flush() {
  while (Step() > 0) {
  }
}

void StreamingBatcher::AdmitLocked(BatchPlan* plan) {
  // Admit up to max_batch_rows sessions, FIFO, one queued point each.
  // Bounded scan of the current queue: sessions another Step still holds in
  // flight are re-queued, not admitted (feed order — their next point must
  // see the committed state), and must not make this loop spin.
  const double now = Now();
  const int64_t hd = tg_->config().hidden_dim;
  const size_t scan = ready_.size();
  for (size_t iter = 0;
       iter < scan && static_cast<int64_t>(plan->admitted.size()) <
                          options_.max_batch_rows;
       ++iter) {
    const SessionId id = ready_.front();
    const double since = ReadyPopLocked();
    Session& s = sessions_.at(id);
    if (s.in_flight) {
      ReadyPushLocked(id, since);
      continue;
    }
    s.in_ready = false;
    if (s.pending.empty()) continue;
    s.in_flight = true;
    plan->admitted.push_back(id);
    plan->points.push_back(s.pending.front().segment);
    plan->trace_ids.push_back(s.pending.front().trace_id);
    if (options_.queue_wait != nullptr) {
      options_.queue_wait->Add(now - s.pending.front().enqueued_ms);
    }
    if (options_.tracer != nullptr && s.pending.front().trace_id != 0) {
      options_.tracer->Record(s.pending.front().trace_id, "queue_wait",
                              options_.trace_where,
                              s.pending.front().enqueued_ms,
                              now - s.pending.front().enqueued_ms);
    }
    s.pending.pop_front();
    --queued_points_;
  }
  if (plan->admitted.empty()) return;

  // Partition: GRU transitions advance together through one fused batched
  // step; first points have no transition yet; kScalingOnly points batch
  // through the RP-VAE by slot. Transition state rows are copied out of the
  // shared matrix — it may be reallocated or compacted while we compute.
  for (size_t a = 0; a < plan->admitted.size(); ++a) {
    Session& s = sessions_.at(plan->admitted[a]);
    if (variant_ == core::ScoreVariant::kScalingOnly) {
      size_t dense = 0;
      while (dense < plan->slot_of.size() &&
             plan->slot_of[dense] != s.rp_slot) {
        ++dense;
      }
      if (dense == plan->slot_of.size()) {
        plan->slot_of.push_back(s.rp_slot);
        plan->slot_segments.emplace_back();
        plan->slot_owners.emplace_back();
      }
      plan->slot_segments[dense].push_back(plan->points[a]);
      plan->slot_owners[dense].push_back(a);
    } else if (s.has_last) {
      plan->tr_current.push_back(s.last);
      plan->tr_next.push_back(plan->points[a]);
      plan->tr_admitted.push_back(a);
      plan->tr_states.insert(plan->tr_states.end(),
                             states_.begin() + s.row * hd,
                             states_.begin() + (s.row + 1) * hd);
    }
  }
  plan->wt = wt_;
}

void StreamingBatcher::ComputeUnlocked(BatchPlan* plan) const {
  plan->tr_nll.assign(plan->tr_current.size(), 0.0);
  if (!plan->tr_current.empty()) {
    // The snapshot is dense: transition k advances row k of tr_states.
    std::vector<int64_t> rows(plan->tr_current.size());
    for (size_t k = 0; k < rows.size(); ++k) {
      rows[k] = static_cast<int64_t>(k);
    }
    tg_->StepNllRows(plan->tr_current, plan->tr_next, rows,
                     plan->tr_states.data(), plan->wt->data(),
                     plan->tr_nll.data());
  }
  plan->slot_nll.resize(plan->slot_of.size());
  for (size_t dense = 0; dense < plan->slot_of.size(); ++dense) {
    plan->slot_nll[dense] =
        rp_->SegmentNllBatch(plan->slot_segments[dense],
                             plan->slot_of[dense]);
  }
}

int64_t StreamingBatcher::CommitLocked(const BatchPlan& plan) {
  const int64_t hd = tg_->config().hidden_dim;
  // Write the advanced state rows back through a fresh row lookup — End()s
  // of other sessions may have compacted the matrix (relocating rows) while
  // we computed. In-flight rows themselves cannot have been released.
  for (size_t k = 0; k < plan.tr_admitted.size(); ++k) {
    Session& s = sessions_.at(plan.admitted[plan.tr_admitted[k]]);
    s.nll += plan.tr_nll[k];
    CAUSALTAD_CHECK_GE(s.row, 0);
    std::copy(plan.tr_states.begin() + static_cast<int64_t>(k) * hd,
              plan.tr_states.begin() + static_cast<int64_t>(k + 1) * hd,
              states_.begin() + s.row * hd);
  }
  for (size_t dense = 0; dense < plan.slot_of.size(); ++dense) {
    const std::vector<double>& nll = plan.slot_nll[dense];
    for (size_t k = 0; k < nll.size(); ++k) {
      sessions_.at(plan.admitted[plan.slot_owners[dense][k]]).nll += nll[k];
    }
  }

  // Emit scores, re-queue sessions with more points, release ended rows.
  const core::ScalingTable& table = model_->scaling_table();
  for (size_t a = 0; a < plan.admitted.size(); ++a) {
    const SessionId id = plan.admitted[a];
    Session& s = sessions_.at(id);
    s.in_flight = false;
    if (variant_ == core::ScoreVariant::kFull) {
      s.scaling += table.log_scaling(plan.points[a], s.table_slot);
    }
    s.last = plan.points[a];
    s.has_last = true;
    if (options_.tracer != nullptr && plan.trace_ids[a] != 0) {
      options_.tracer->Record(plan.trace_ids[a], "compute",
                              options_.trace_where, plan.compute_start_ms,
                              plan.compute_dur_ms);
    }
    if (s.emit_skip > 0) {
      // Prefix replay: the consumer already holds this score — the state
      // advance above is the whole point; queueing it would duplicate.
      --s.emit_skip;
    } else {
      s.scores.push_back(s.base + s.nll - lambda_ * s.scaling);
      if (options_.tracer != nullptr && plan.trace_ids[a] != 0) {
        options_.tracer->Record(plan.trace_ids[a], "emit",
                                options_.trace_where, Now(), 0.0);
      }
    }
    if (!s.pending.empty()) {
      // A Push that landed while we computed may have re-queued the session
      // already (it saw in_ready false); only queue it once.
      if (!s.in_ready) {
        s.in_ready = true;
        // Carry the oldest remaining point's original enqueue time, not the
        // re-queue time: a k-point burst must drain within ~max_delay_ms of
        // each point's arrival, not wait k·max_delay_ms for its tail.
        ReadyPushLocked(id, s.pending.front().enqueued_ms);
      }
    } else if (s.ended) {
      ReleaseRowLocked(&s);
      // End() during our compute could not forget the session (in flight);
      // mirror its cleanup now that the score is committed.
      MaybeForgetLocked(id);
    }
  }
  steps_fired_ += 1;
  points_scored_ += static_cast<int64_t>(plan.admitted.size());
  return static_cast<int64_t>(plan.admitted.size());
}

int64_t StreamingBatcher::active_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_ - static_cast<int64_t>(free_rows_.size());
}

int64_t StreamingBatcher::capacity_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

int64_t StreamingBatcher::queued_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_points_;
}

int64_t StreamingBatcher::tracked_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

StreamingBatcher::Counters StreamingBatcher::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {steps_fired_, points_scored_};
}

}  // namespace serve
}  // namespace causaltad
