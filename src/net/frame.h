#ifndef CAUSALTAD_NET_FRAME_H_
#define CAUSALTAD_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "roadnet/road_network.h"
#include "util/status.h"

namespace causaltad {
namespace net {

/// Wire protocol version emitted by EncodeFrame and required by the
/// decoder. Bump on any payload layout change; the decoder rejects frames
/// from other versions with a clean error instead of misparsing them.
/// v2: session continuity — Begin carries a resume key, ScoreDelta/Poll
/// carry cumulative score offsets, and Resume/ResumeAck/Heartbeat exist.
/// v3: fleet administration — Admin/AdminAck carry staged model swaps and
/// drain commands so a router can roll changes across backends.
/// v4: observability — Push carries an OPTIONAL trailing trace id (absent
/// when 0, so un-sampled traffic pays zero wire bytes) and Stats asks for a
/// metrics exposition (answered with an AdminAck whose message is the
/// exposition text).
inline constexpr uint8_t kWireVersion = 4;

/// Hard cap on a frame's payload (version + type + fields). An incoming
/// length prefix above this is a protocol error — the decoder fails fast
/// instead of buffering an attacker-chosen allocation.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;  // 1 MiB

/// Message kinds. kHello..kPoll flow client -> server; kScoreDelta,
/// kPushReject, and kError flow server -> client. See src/net/README.md for
/// the full wire-format table.
enum class FrameType : uint8_t {
  kHello = 1,       // tenant handshake: {tenant, auth_token}
  kBegin = 2,       // open session: {session, source, destination,
                    //  time_slot, resume_key} (resume_key 0 = not resumable)
  kPush = 3,        // next observed point: {session, seq, wire_seq, segment}
  kEnd = 4,         // no more pushes for {session}
  kPoll = 5,        // request a ScoreDelta for {session}; echoes {token};
                    //  {offset} acks scores below it (resume history prune)
  kScoreDelta = 6,  // {session, token, offset, scores[]} — scores since the
                    //  last Poll; offset = cumulative index of scores[0]
  kPushReject = 7,  // {session, seq, wire_seq, reason} — point NOT enqueued
  kError = 8,       // {code, message} — connection closes after terminal ones
  kResume = 9,      // re-adopt a session after reconnect: {session,
                    //  resume_key, source, destination, time_slot,
                    //  offset = client's delivered score high-water}
  kResumeAck = 10,  // {session, offset = replay pushes from this seq}
  kHeartbeat = 11,  // liveness probe: {token, seq} (seq 1 = ping, 0 = pong;
                    //  the pong echoes the ping's token)
  kAdmin = 12,      // operator command: {token, message} — message is a
                    //  command string, e.g. "stage:<tag>" or "commit"
  kAdminAck = 13,   // {token, seq, message} — seq is an AdminStatus; the ack
                    //  echoes the Admin's token (stage acks are deferred
                    //  until the background load finishes)
  kStats = 14,      // scrape request: {token} — answered with an AdminAck
                    //  whose message is the obs::Registry text exposition
                    //  (the router answers with its aggregated fleet view)
};

/// Result of an Admin command, carried in kAdminAck's seq field.
enum class AdminStatus : uint64_t {
  kOk = 0,     // command completed (stage: weights resident; commit: flipped)
  kBusy = 1,   // a stage is still loading — retry the commit later
  kError = 2,  // command failed; message explains why
};

/// Why a Push was rejected (the wire mapping of serve::PushStatus plus the
/// server-side quota and ordering rejections).
enum class RejectReason : uint8_t {
  kSessionFull = 1,  // serve::PushStatus::kSessionFull — backpressure, retry
  kShardFull = 2,    // serve::PushStatus::kShardFull — shard shedding load
  kQuota = 3,        // per-tenant unscored-point quota hit before the shard
  kOutOfOrder = 4,   // seq gap: an earlier push of this session was rejected
  kShutdown = 5,     // serve::PushStatus::kShutdown — terminal, do not retry
};

/// Connection-fatal protocol failures carried by kError frames.
enum class ErrorCode : uint8_t {
  kAuthRequired = 1,     // first frame was not Hello
  kAuthFailed = 2,       // unknown tenant or bad token
  kUnknownSession = 3,   // Begin never seen (or already forgotten)
  kDuplicateSession = 4, // Begin reused a live client session id
  kInvalidSegment = 5,   // segment id out of range / not a legal successor
  kProtocol = 6,         // malformed frame or bad message sequence
  kShuttingDown = 7,     // server is stopping
};

const char* RejectReasonName(RejectReason reason);
const char* ErrorCodeName(ErrorCode code);
/// snake_case name for metric labels ("push", "score_delta", ...).
const char* FrameTypeName(FrameType type);

/// One decoded wire message: the type tag plus the union of all message
/// fields (unused fields keep their defaults — a tagged struct keeps the
/// encode/decode table in one place and the property test exhaustive).
struct Frame {
  FrameType type = FrameType::kError;

  uint64_t session = 0;   // Begin/Push/End/Poll/ScoreDelta/PushReject/Resume
  uint64_t seq = 0;       // Push/PushReject: per-session push sequence;
                          // Heartbeat: 1 = ping, 0 = pong
  uint64_t wire_seq = 0;  // Push/PushReject: unique per transmission (retries
                          // get a fresh one, so a client can drop stale
                          // rejects for points it has already resent)
  uint64_t token = 0;     // Poll/ScoreDelta/Heartbeat: client-chosen, echoed
                          // verbatim
  uint64_t offset = 0;    // ScoreDelta: cumulative index of scores[0];
                          // Poll/Resume: client's delivered high-water (acks
                          // scores below it); ResumeAck: replay-from seq
  uint64_t resume_key = 0;  // Begin/Resume: tenant-scoped session identity
                            // surviving reconnects (0 = not resumable)
  uint64_t trace_id = 0;  // Push: sampled trace identity, carried through
                          // router legs to the backend shard. OPTIONAL on
                          // the wire: encoded only when nonzero (a trailing
                          // extension v4 decoders read when present), so
                          // un-sampled pushes cost nothing extra.

  roadnet::SegmentId segment = roadnet::kInvalidSegment;      // Push
  roadnet::SegmentId source = roadnet::kInvalidSegment;       // Begin/Resume
  roadnet::SegmentId destination = roadnet::kInvalidSegment;  // Begin/Resume
  int32_t time_slot = 0;                                      // Begin/Resume

  std::string tenant;      // Hello
  std::string auth_token;  // Hello

  std::vector<double> scores;  // ScoreDelta

  RejectReason reason = RejectReason::kSessionFull;  // PushReject
  ErrorCode code = ErrorCode::kProtocol;             // Error
  std::string message;                               // Error
};

/// Appends the complete wire encoding of `frame` — u32 little-endian payload
/// length, then the payload (u8 version, u8 type, fields) — to `out`.
void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out);

/// Decodes one payload (the bytes AFTER the length prefix). Fails cleanly on
/// unknown version/type, truncated fields, or trailing garbage.
util::StatusOr<Frame> DecodeFramePayload(const uint8_t* payload, size_t size);

/// Incremental frame extractor for a byte stream: Feed() socket bytes in
/// arbitrary chunks, then drain complete frames with Next(). A malformed
/// frame (oversized length prefix, bad version, truncated payload, unknown
/// type) poisons the decoder — Next() returns the error from then on, and
/// the connection should be closed; resynchronizing inside a corrupt
/// length-prefixed stream is not possible.
class FrameDecoder {
 public:
  void Feed(const uint8_t* data, size_t size);

  /// True: a complete frame was decoded into *frame. False: either more
  /// bytes are needed (status() stays OK) or the stream is corrupt
  /// (status() holds the error).
  bool Next(Frame* frame);

  const util::Status& status() const { return status_; }

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  util::Status status_;
};

}  // namespace net
}  // namespace causaltad

#endif  // CAUSALTAD_NET_FRAME_H_
