#ifndef CAUSALTAD_UTIL_PARALLEL_H_
#define CAUSALTAD_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace causaltad {
namespace util {

/// Worker-thread count used by ParallelFor when the caller passes
/// threads <= 0. Defaults to std::thread::hardware_concurrency, overridable
/// once via the CAUSALTAD_THREADS environment variable or at any time via
/// SetParallelThreads. Always >= 1.
int ParallelThreads();

/// Overrides the default thread count (0 restores the hardware default).
void SetParallelThreads(int threads);

/// Splits [0, n) into up to `threads` contiguous ranges and runs
/// fn(begin, end) for each, one range inline and the rest on a persistent
/// worker pool; blocks until every range completes. threads <= 0 means
/// ParallelThreads(). Calls from inside a worker (nested parallelism) run
/// inline, so callers never deadlock the pool. fn must be thread-safe.
void ParallelFor(int64_t n, int threads,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Whether the batched scorers order rows by prefix length before sharding
/// (length-bucketed batching). Defaults to on; CAUSALTAD_NO_LENGTH_BUCKET=1
/// starts it off, SetLengthBucketing flips it at runtime (benches A/B it).
bool LengthBucketingEnabled();
void SetLengthBucketing(bool enabled);

/// Partitions rows 0..costs.size() into shards for a [B, hidden] batch
/// roll. With bucketing enabled, rows are visited in descending-cost order
/// and cut into runs of near-equal *total* cost: rows inside one shard then
/// have near-uniform length (short rows stop paying padded gate flops /
/// compaction churn next to long ones) and shards carry near-equal work
/// (thread balance, unlike equal-count splits of a length-sorted order).
/// With bucketing disabled, shards are contiguous equal-count index ranges
/// — the pre-bucketing sharding, kept for A/B benchmarking. Returns a
/// single shard (or fewer) when the batch is too small to spread
/// (`min_rows_per_shard` rows must land on each worker).
std::vector<std::vector<int64_t>> RowShards(std::span<const int64_t> costs,
                                            int64_t min_rows_per_shard);

}  // namespace util
}  // namespace causaltad

#endif  // CAUSALTAD_UTIL_PARALLEL_H_
