#include "traj/gps_sim.h"

#include "geo/geo.h"
#include "util/logging.h"

namespace causaltad {
namespace traj {

GpsTrace SimulateGps(const roadnet::RoadNetwork& network, const Route& route,
                     const GpsSimConfig& config, util::Rng* rng) {
  CAUSALTAD_CHECK(rng != nullptr);
  CAUSALTAD_CHECK(!route.empty());
  const geo::LocalProjection proj(network.node(
      network.segment(route.segments.front()).from).pos);

  GpsTrace trace;
  double clock_s = 0.0;
  double next_fix_s = 0.0;
  for (const roadnet::SegmentId sid : route.segments) {
    const roadnet::Segment& seg = network.segment(sid);
    const geo::Vec2 a = proj.Project(network.node(seg.from).pos);
    const geo::Vec2 b = proj.Project(network.node(seg.to).pos);
    const double speed =
        std::max(1.0, seg.speed_mps * config.speed_factor);
    const double duration = seg.length_m / speed;
    // Emit every fix falling inside this segment's time window.
    while (next_fix_s < clock_s + duration) {
      const double t = (next_fix_s - clock_s) / duration;
      geo::Vec2 p = a + (b - a) * t;
      p.x += rng->Gaussian(0, config.noise_sigma_m);
      p.y += rng->Gaussian(0, config.noise_sigma_m);
      trace.points.push_back({proj.Unproject(p), next_fix_s});
      next_fix_s += config.interval_s;
    }
    clock_s += duration;
  }
  // Always emit a final fix at the destination.
  const roadnet::Segment& last = network.segment(route.segments.back());
  geo::Vec2 end = proj.Project(network.node(last.to).pos);
  end.x += rng->Gaussian(0, config.noise_sigma_m);
  end.y += rng->Gaussian(0, config.noise_sigma_m);
  trace.points.push_back({proj.Unproject(end), clock_s});
  return trace;
}

}  // namespace traj
}  // namespace causaltad
