#include "nn/optim.h"

#include <cmath>

#include "util/logging.h"

namespace causaltad {
namespace nn {

Adam::Adam(std::vector<Var> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    CAUSALTAD_CHECK(p.requires_grad());
    m_.push_back(Tensor::Zeros(p.value().shape()));
    v_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

void Adam::Step() {
  ++step_;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& value = params_[i].mutable_value();
    const Tensor& grad = params_[i].grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (int64_t j = 0; j < value.numel(); ++j) {
      float g = grad[j];
      if (config_.weight_decay != 0.0f) g += config_.weight_decay * value[j];
      m[j] = b1 * m[j] + (1.0f - b1) * g;
      v[j] = b2 * v[j] + (1.0f - b2) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.eps);
    }
  }
}

void Adam::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

double GlobalGradNorm(std::span<const Var> params) {
  double total = 0.0;
  for (const Var& p : params) {
    const Tensor& g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  return std::sqrt(total);
}

void ClipGradNorm(std::span<const Var> params, double max_norm) {
  const double norm = GlobalGradNorm(params);
  if (norm <= max_norm || norm == 0.0) return;
  const float scale = static_cast<float>(max_norm / norm);
  for (const Var& p : params) {
    Tensor& g = const_cast<Var&>(p).grad();
    for (int64_t i = 0; i < g.numel(); ++i) g[i] *= scale;
  }
}

}  // namespace nn
}  // namespace causaltad
