#ifndef CAUSALTAD_MODELS_IBOAT_H_
#define CAUSALTAD_MODELS_IBOAT_H_

#include <map>
#include <memory>
#include <vector>

#include "models/scorer.h"
#include "roadnet/road_network.h"

namespace causaltad {
namespace models {

/// iBOAT parameters (Chen et al. 2013).
struct IboatConfig {
  /// A working window is "supported" when at least this fraction of the
  /// reference trajectories contain it as a contiguous sub-sequence.
  double support_threshold = 0.05;
  /// Minimum reference count before a pair's own references are trusted;
  /// below this the nearest pair's references are borrowed.
  int min_references = 2;
};

/// The metric/isolation-based baseline. Training just indexes the normal
/// routes per SD pair; scoring maintains iBOAT's adaptive working window
/// over the incoming segments and accumulates (1 - support) for points
/// whose window support collapses below the threshold.
///
/// For an unseen (OOD) SD pair, the references of the *closest* candidate
/// pair (by endpoint distance) are used, as described in the paper's OOD
/// evaluation protocol — which is exactly why iBOAT degrades there.
class Iboat : public TrajectoryScorer {
 public:
  Iboat(const roadnet::RoadNetwork* network, const IboatConfig& config = {});

  std::string Name() const override { return "iBOAT"; }
  void Fit(const std::vector<traj::Trip>& trips,
           const FitOptions& options) override;
  double Score(const traj::Trip& trip, int64_t prefix_len) const override;
  std::unique_ptr<OnlineScorer> BeginTrip(const traj::Trip& trip) const
      override;
  util::Status Save(const std::string& path) const override;
  util::Status Load(const std::string& path) override;

 private:
  using PairKey = std::pair<roadnet::NodeId, roadnet::NodeId>;

  /// References to use for this SD pair: its own if it has enough, else the
  /// nearest indexed pair's.
  const std::vector<std::vector<roadnet::SegmentId>>* ReferencesFor(
      const PairKey& key) const;

  const roadnet::RoadNetwork* network_;
  IboatConfig config_;
  std::map<PairKey, std::vector<std::vector<roadnet::SegmentId>>> references_;
};

}  // namespace models
}  // namespace causaltad

#endif  // CAUSALTAD_MODELS_IBOAT_H_
